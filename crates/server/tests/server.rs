//! End-to-end tests for the dlr-server subsystem: concurrency, hostile
//! clients, disconnects, backpressure, and epoch-driven refresh racing
//! live decrypt traffic.

use bytes::Bytes;
use dlr_core::dlr::{self, DecMsg2, Party1, PublicKey, Share1, Share2};
use dlr_core::driver::{self, ErrorCode, GENERATION_ANY};
use dlr_core::error::CoreError;
use dlr_core::params::SchemeParams;
use dlr_curve::{Group, Pairing, Toy};
use dlr_protocol::transport::TcpTransport;
use dlr_protocol::{Transport, TransportError};
use dlr_server::{Keyring, LoadgenConfig, Server, ServerConfig, ServerHandle, StatsSnapshot};
use rand::SeedableRng;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

type E = Toy;

fn keygen(seed: u64) -> (PublicKey<E>, Share1<E>, Share2<E>) {
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
    dlr::keygen::<E, _>(params, &mut r)
}

struct RunningServer {
    handle: ServerHandle,
    thread: std::thread::JoinHandle<StatsSnapshot>,
}

impl RunningServer {
    fn addr(&self) -> SocketAddr {
        self.handle.local_addr()
    }

    fn stop(self) -> StatsSnapshot {
        self.handle.shutdown();
        self.thread.join().expect("server thread panicked")
    }
}

fn start_server(server: Server<E>) -> RunningServer {
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run failed"));
    RunningServer { handle, thread }
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        max_sessions: 8,
        read_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}

fn connect(addr: SocketAddr) -> TcpTransport {
    let stream = TcpStream::connect(addr).expect("connect");
    let t = TcpTransport::new(stream);
    t.set_nodelay(true).unwrap();
    t.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    t
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn serves_four_concurrent_sessions() {
    let (pk, s1, s2) = keygen(100);
    let mut ring = Keyring::new();
    ring.insert(b"k", pk.clone(), s2);
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), quick_config()).unwrap();
    let running = start_server(server);
    let addr = running.addr();

    let mut r = rand::rngs::StdRng::seed_from_u64(101);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = dlr::encrypt(&pk, &m, &mut r);

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 5;
    // Two barriers around the "all sessions open" point so the main
    // thread can observe genuine concurrency.
    let connected = Arc::new(Barrier::new(CLIENTS + 1));
    let release = Arc::new(Barrier::new(CLIENTS + 1));

    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let pk = pk.clone();
            let s1 = s1.clone();
            let connected = Arc::clone(&connected);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                let mut t = connect(addr);
                assert_eq!(driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap(), 0);
                connected.wait();
                release.wait();
                let mut p1 = Party1::new(pk, s1);
                let mut rng = rand::rngs::StdRng::seed_from_u64(200 + i as u64);
                for _ in 0..REQUESTS {
                    let got = driver::p1_decrypt(&mut p1, &ct, &mut t, &mut rng).unwrap();
                    assert_eq!(got, m);
                }
                driver::p1_shutdown(&mut t).unwrap();
            })
        })
        .collect();

    connected.wait();
    assert_eq!(
        running.handle.active_sessions(),
        CLIENTS,
        "all sessions must be open simultaneously"
    );
    release.wait();
    for w in workers {
        w.join().unwrap();
    }

    let stats = running.stop();
    assert_eq!(stats.sessions_accepted, CLIENTS as u64);
    assert_eq!(stats.requests_hello, CLIENTS as u64);
    assert_eq!(stats.requests_decrypt, (CLIENTS * REQUESTS) as u64);
    assert_eq!(stats.error_replies, 0);
    assert_eq!(stats.sessions_completed, CLIENTS as u64);
    assert!(stats.wire.frames_received >= (CLIENTS * (REQUESTS + 2)) as u64);
}

#[test]
fn garbage_and_truncated_frames_get_structured_errors() {
    let (pk, s1, s2) = keygen(110);
    let mut ring = Keyring::new();
    ring.insert(b"k", pk.clone(), s2);
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), quick_config()).unwrap();
    let running = start_server(server);
    let addr = running.addr();

    let mut t = connect(addr);
    // unknown tag
    t.send(Bytes::from_static(&[99, 1, 2])).unwrap();
    match driver::parse_reply(&t.recv().unwrap()) {
        Err(CoreError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownTag as u8),
        other => panic!("expected UnknownTag, got {other:?}"),
    }
    // truncated decrypt body
    t.send(Bytes::from_static(&[1, 0, 0])).unwrap();
    match driver::parse_reply(&t.recv().unwrap()) {
        Err(CoreError::Remote { code, .. }) => assert_eq!(code, ErrorCode::BadRequest as u8),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // empty frame
    t.send(Bytes::new()).unwrap();
    match driver::parse_reply(&t.recv().unwrap()) {
        Err(CoreError::Remote { code, .. }) => assert_eq!(code, ErrorCode::BadRequest as u8),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // unknown key id in hello
    match driver::p1_hello(&mut t, b"nonexistent", GENERATION_ANY) {
        Err(CoreError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownKey as u8),
        other => panic!("expected UnknownKey, got {other:?}"),
    }
    // the same session still decrypts fine afterwards
    let mut r = rand::rngs::StdRng::seed_from_u64(111);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = dlr::encrypt(&pk, &m, &mut r);
    let mut p1 = Party1::new(pk.clone(), s1.clone());
    assert_eq!(driver::p1_decrypt(&mut p1, &ct, &mut t, &mut r).unwrap(), m);
    driver::p1_shutdown(&mut t).unwrap();

    // An oversized frame header kills only that session...
    use std::io::Write as _;
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
    raw.write_all(&[0u8; 16]).unwrap();
    drop(raw);

    // ...and the server keeps serving new sessions.
    wait_until("hostile sessions to close", Duration::from_secs(5), || {
        running.handle.active_sessions() == 0
    });
    let mut t2 = connect(addr);
    assert_eq!(driver::p1_hello(&mut t2, b"k", GENERATION_ANY).unwrap(), 0);
    assert_eq!(driver::p1_decrypt(&mut p1, &ct, &mut t2, &mut r).unwrap(), m);
    driver::p1_shutdown(&mut t2).unwrap();

    let stats = running.stop();
    assert!(stats.error_replies >= 4);
    assert_eq!(stats.requests_decrypt, 2);
}

#[test]
fn survives_disconnect_mid_protocol() {
    let (pk, s1, s2) = keygen(120);
    let mut ring = Keyring::new();
    ring.insert(b"k", pk.clone(), s2);
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), quick_config()).unwrap();
    let running = start_server(server);
    let addr = running.addr();

    let mut r = rand::rngs::StdRng::seed_from_u64(121);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = dlr::encrypt(&pk, &m, &mut r);
    let mut p1 = Party1::new(pk.clone(), s1.clone());

    // Client sends a valid decrypt request and vanishes without reading
    // the reply.
    {
        let mut t = connect(addr);
        driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap();
        let m1 = p1.dec_start(&ct, &mut r);
        let mut frame = vec![1u8]; // RequestTag::Decrypt
        frame.extend_from_slice(&m1.to_bytes());
        t.send(Bytes::from(frame)).unwrap();
        // drop mid-protocol
    }
    // Another client sends half a frame and vanishes.
    {
        use std::io::Write as _;
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(&[4u8; 10]).unwrap();
    }

    wait_until("broken sessions to close", Duration::from_secs(5), || {
        running.handle.active_sessions() == 0
    });

    // The key state is unharmed: a fresh session decrypts correctly.
    let mut t = connect(addr);
    driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap();
    assert_eq!(driver::p1_decrypt(&mut p1, &ct, &mut t, &mut r).unwrap(), m);
    driver::p1_shutdown(&mut t).unwrap();

    let stats = running.stop();
    assert_eq!(stats.sessions_accepted, 3);
    assert_eq!(stats.sessions_completed, 3);
}

#[test]
fn busy_backpressure_rejects_above_session_limit() {
    let (pk, _s1, s2) = keygen(130);
    let mut ring = Keyring::new();
    ring.insert(b"k", pk, s2);
    let config = ServerConfig {
        max_sessions: 1,
        ..quick_config()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), config).unwrap();
    let running = start_server(server);
    let addr = running.addr();

    // First session occupies the only slot (hello reply proves the
    // worker is live and counted).
    let mut a = connect(addr);
    driver::p1_hello(&mut a, b"k", GENERATION_ANY).unwrap();

    // Second connection is refused with a structured Busy reply.
    let mut b = connect(addr);
    match driver::p1_hello(&mut b, b"k", GENERATION_ANY) {
        Err(CoreError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Busy as u8),
        other => panic!("expected Busy, got {other:?}"),
    }
    drop(b);

    // Busy is retryable per the client retry policy.
    assert!(driver::is_retryable(&CoreError::Remote {
        code: ErrorCode::Busy as u8,
        message: String::new(),
    }));

    // Once the first session ends, the slot frees up.
    driver::p1_shutdown(&mut a).unwrap();
    wait_until("slot to free", Duration::from_secs(5), || {
        running.handle.active_sessions() == 0
    });
    let mut c = connect(addr);
    driver::p1_hello(&mut c, b"k", GENERATION_ANY).unwrap();
    driver::p1_shutdown(&mut c).unwrap();

    let stats = running.stop();
    assert_eq!(stats.sessions_rejected_busy, 1);
    assert_eq!(stats.sessions_accepted, 2);
}

#[test]
fn hello_generation_binding_is_enforced() {
    let (pk, _s1, s2) = keygen(140);
    let mut ring = Keyring::new();
    ring.insert(b"k", pk, s2);
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), quick_config()).unwrap();
    let running = start_server(server);

    let mut t = connect(running.addr());
    // Claiming a future generation is refused...
    match driver::p1_hello(&mut t, b"k", 5) {
        Err(CoreError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::StaleGeneration as u8)
        }
        other => panic!("expected StaleGeneration, got {other:?}"),
    }
    // ...the wildcard binds to whatever is current...
    assert_eq!(driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap(), 0);
    // ...and the exact current generation is accepted too.
    assert_eq!(driver::p1_hello(&mut t, b"k", 0).unwrap(), 0);
    driver::p1_shutdown(&mut t).unwrap();
    running.stop();
}

/// The tentpole scenario: the epoch scheduler fires while decrypt traffic
/// is live. The epoch hook drives a full wire refresh through the shared
/// `P1`; racing decrypt sessions lose the generation race, observe
/// `StaleGeneration`, re-hello, and every subsequent decryption is
/// correct under the rotated share — which is also persisted to disk.
#[test]
fn epoch_refresh_races_live_decrypts() {
    let dir = std::env::temp_dir().join(format!("dlr-server-epoch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let share_path = dir.join("sk2.dlr");

    let (pk, s1, s2) = keygen(150);
    let original_share_bytes = s2.to_bytes();
    let mut ring = Keyring::new();
    ring.insert_persistent(b"k", pk.clone(), s2, share_path.clone());
    let mut server = Server::bind("127.0.0.1:0", Arc::new(ring), quick_config()).unwrap();
    let addr = server.handle().local_addr();

    // Refresh rotates BOTH shares jointly, so the decrypting clients and
    // the epoch hook must share one P1 state.
    let shared_p1 = Arc::new(Mutex::new(Party1::new(pk.clone(), s1)));

    {
        let shared_p1 = Arc::clone(&shared_p1);
        server.set_epoch_hook(move |epoch| {
            let mut t = connect(addr);
            driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap();
            let mut p1 = shared_p1.lock().unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + epoch);
            driver::p1_refresh(&mut p1, &mut t, &mut rng).unwrap();
            let _ = driver::p1_shutdown(&mut t);
        });
    }
    let running = start_server(server);

    let mut r = rand::rngs::StdRng::seed_from_u64(151);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = dlr::encrypt(&pk, &m, &mut r);

    const CLIENTS: usize = 3;
    const REQUESTS: usize = 20;
    let stale_hits = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let shared_p1 = Arc::clone(&shared_p1);
            let stale_hits = Arc::clone(&stale_hits);
            std::thread::spawn(move || {
                let mut t = connect(addr);
                driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap();
                let mut rng = rand::rngs::StdRng::seed_from_u64(300 + i as u64);
                for _ in 0..REQUESTS {
                    // Hold the shared P1 for the whole round so the hook's
                    // refresh cannot rotate the share underneath a
                    // half-done decryption.
                    let mut p1 = shared_p1.lock().unwrap();
                    loop {
                        match driver::p1_decrypt(&mut p1, &ct, &mut t, &mut rng) {
                            Ok(got) => {
                                assert_eq!(got, m, "decryption after refresh must stay correct");
                                break;
                            }
                            Err(CoreError::Remote { code, .. })
                                if code == ErrorCode::StaleGeneration as u8 =>
                            {
                                // Lost the generation race: re-sync the
                                // session binding and retry.
                                stale_hits.fetch_add(1, Ordering::Relaxed);
                                driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap();
                            }
                            Err(e) => panic!("decrypt failed: {e}"),
                        }
                    }
                    drop(p1);
                    std::thread::sleep(Duration::from_millis(1));
                }
                driver::p1_shutdown(&mut t).unwrap();
            })
        })
        .collect();

    // Fire two epoch boundaries while the traffic runs.
    std::thread::sleep(Duration::from_millis(20));
    running.handle.force_epoch();
    wait_until("first epoch refresh", Duration::from_secs(10), || {
        running.handle.stats().refreshes >= 1
    });
    running.handle.force_epoch();
    wait_until("second epoch refresh", Duration::from_secs(10), || {
        running.handle.stats().refreshes >= 2
    });

    for w in workers {
        w.join().unwrap();
    }
    let stats = running.stop();

    assert_eq!(stats.epochs, 2);
    assert_eq!(stats.refreshes, 2);
    assert_eq!(stats.persist_failures, 0);
    assert_eq!(
        stats.requests_decrypt,
        (CLIENTS * REQUESTS) as u64,
        "every client decrypt eventually succeeded"
    );
    // Sessions bound to the pre-refresh generation observed the race as
    // structured StaleGeneration errors, never as garbage plaintext.
    assert_eq!(stats.error_replies as usize, stale_hits.load(Ordering::Relaxed));

    // The refreshed share is on disk, parseable, and differs from the
    // original (rotation actually happened).
    let on_disk = std::fs::read(&share_path).unwrap();
    assert_ne!(on_disk, original_share_bytes);
    assert!(Share2::<E>::from_bytes(&on_disk, &pk.params).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn loadgen_smoke_produces_valid_report() {
    let (pk, s1, s2) = keygen(160);
    let mut ring = Keyring::new();
    ring.insert(b"bench", pk.clone(), s2);
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), quick_config()).unwrap();
    let running = start_server(server);

    let config = LoadgenConfig {
        clients: 4,
        requests_per_client: 5,
        key_id: b"bench".to_vec(),
        ..LoadgenConfig::default()
    };
    let mut r = rand::rngs::StdRng::seed_from_u64(161);
    let outcome = dlr_server::run_loadgen::<E, _>(running.addr(), &pk, &s1, &config, &mut r);

    assert_eq!(outcome.successes, 20);
    assert_eq!(outcome.failures, 0);
    assert_eq!(outcome.mismatches, 0);
    assert_eq!(outcome.latencies_ns.len(), 20);
    assert!(outcome.throughput_rps() > 0.0);
    assert!(outcome.latency_percentile_ns(50.0) <= outcome.latency_percentile_ns(99.0));

    // The report round-trips through the dlr-metrics JSON schema.
    let report = outcome.to_report();
    let parsed = dlr_metrics::Report::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed.meta.get("successes").unwrap(), "20");
    assert_eq!(parsed.wire.len(), 1);
    // hello + 20 decrypts + 4 shutdowns crossed the wire
    assert_eq!(parsed.wire[0].stats.frames_sent, 4 + 20 + 4);

    let stats = running.stop();
    assert_eq!(stats.requests_decrypt, 20);
    assert_eq!(stats.error_replies, 0);
}

#[test]
fn loadgen_ladder_visits_every_rung() {
    let (pk, s1, s2) = keygen(165);
    let mut ring = Keyring::new();
    ring.insert(b"bench", pk.clone(), s2);
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), quick_config()).unwrap();
    let running = start_server(server);

    let ladder = dlr_server::LadderConfig {
        rungs: vec![1, 2, 4],
        requests_per_client: 3,
        base: LoadgenConfig {
            key_id: b"bench".to_vec(),
            ..LoadgenConfig::default()
        },
    };
    let mut r = rand::rngs::StdRng::seed_from_u64(166);
    let rungs = dlr_server::run_loadgen_ladder::<E, _>(running.addr(), &pk, &s1, &ladder, &mut r);

    assert_eq!(rungs.iter().map(|r| r.clients).collect::<Vec<_>>(), vec![1, 2, 4]);
    for rung in &rungs {
        assert_eq!(rung.outcome.clients, rung.clients);
        assert_eq!(rung.outcome.successes, rung.clients * 3);
        assert_eq!(rung.outcome.failures, 0);
        assert_eq!(rung.outcome.mismatches, 0);
        // encrypt throughput is measured once by the caller, never per rung
        assert_eq!(rung.outcome.encrypt_ops, 0);
    }

    let stats = running.stop();
    assert_eq!(stats.requests_decrypt, (1 + 2 + 4) * 3);
    assert_eq!(stats.error_replies, 0);
}

#[test]
fn graceful_shutdown_persists_and_reports() {
    let dir = std::env::temp_dir().join(format!("dlr-server-stats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let share_path = dir.join("sk2.dlr");
    let stats_path = dir.join("stats.json");

    let (pk, s1, s2) = keygen(170);
    let expected_share = s2.to_bytes();
    let mut ring = Keyring::new();
    ring.insert_persistent(b"k", pk.clone(), s2, share_path.clone());
    let config = ServerConfig {
        stats_interval: Some(Duration::from_millis(40)),
        stats_path: Some(stats_path.clone()),
        ..quick_config()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), config).unwrap();
    let running = start_server(server);

    let mut r = rand::rngs::StdRng::seed_from_u64(171);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = dlr::encrypt(&pk, &m, &mut r);
    let mut p1 = Party1::new(pk.clone(), s1);
    let mut t = connect(running.addr());
    driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap();
    assert_eq!(driver::p1_decrypt(&mut p1, &ct, &mut t, &mut r).unwrap(), m);
    driver::p1_shutdown(&mut t).unwrap();

    let addr = running.addr();
    let stats = running.stop();
    assert_eq!(stats.requests_decrypt, 1);

    // Graceful shutdown persisted the (unrefreshed) share and the final
    // stats dump parses as a dlr-metrics report.
    assert_eq!(std::fs::read(&share_path).unwrap(), expected_share);
    let report =
        dlr_metrics::Report::from_json(&std::fs::read_to_string(&stats_path).unwrap()).unwrap();
    assert_eq!(report.meta.get("requests_decrypt").unwrap(), "1");
    assert_eq!(report.meta.get("component").unwrap(), "dlr-server");
    std::fs::remove_dir_all(&dir).unwrap();

    // After run() returns, the port is released.
    assert!(matches!(
        TcpTransport::new(match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => return, // refused immediately: also fine
        })
        .recv(),
        Err(TransportError::Disconnected | TransportError::TimedOut | TransportError::Io(_))
    ));
}

#[test]
fn panicking_dispatch_reclaims_slot_and_keeps_serving() {
    let (pk, s1, s2) = keygen(180);
    let mut ring = Keyring::new();
    ring.insert(b"k", pk.clone(), s2);
    let config = ServerConfig {
        max_sessions: 2,
        inject_panic_tag: Some(0xEE),
        ..quick_config()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), config).unwrap();
    let running = start_server(server);
    let addr = running.addr();

    // Crash more sessions than the session limit: if a panicking session
    // leaked its slot (the old accept-path bug), the third connection
    // here would be rejected Busy instead of served.
    for _ in 0..4 {
        let mut t = connect(addr);
        assert_eq!(driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap(), 0);
        t.send(Bytes::from_static(&[0xEE])).unwrap();
        match t.recv() {
            Err(TransportError::Disconnected) => {}
            other => panic!("expected the panicked session to be closed, got {other:?}"),
        }
        wait_until("panicked slot to free", Duration::from_secs(5), || {
            running.handle.active_sessions() == 0
        });
    }

    // The key state survived and the server is fully available.
    let mut r = rand::rngs::StdRng::seed_from_u64(181);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = dlr::encrypt(&pk, &m, &mut r);
    let mut p1 = Party1::new(pk, s1);
    let mut t = connect(addr);
    assert_eq!(driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap(), 0);
    assert_eq!(driver::p1_decrypt(&mut p1, &ct, &mut t, &mut r).unwrap(), m);
    driver::p1_shutdown(&mut t).unwrap();

    let stats = running.stop();
    assert_eq!(stats.session_panics, 4);
    assert_eq!(stats.sessions_accepted, 5);
    assert_eq!(stats.sessions_completed, 5);
    assert_eq!(stats.sessions_rejected_busy, 0, "no slot may leak");
    let msg = stats.last_panic.expect("panic message must be recorded");
    assert!(msg.contains("injected fault"), "unexpected message: {msg}");
}

#[test]
fn stalled_busy_reject_does_not_block_the_accept_path() {
    let (pk, _s1, s2) = keygen(185);
    let mut ring = Keyring::new();
    ring.insert(b"k", pk, s2);
    let config = ServerConfig {
        max_sessions: 1,
        reject_write_timeout: Duration::from_millis(100),
        ..quick_config()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), config).unwrap();
    let running = start_server(server);
    let addr = running.addr();

    let mut a = connect(addr);
    driver::p1_hello(&mut a, b"k", GENERATION_ANY).unwrap();

    // A client that gets rejected and then just sits there: never reads
    // its Busy reply, never closes its socket.
    let staller = TcpStream::connect(addr).unwrap();
    wait_until("staller to be rejected", Duration::from_secs(5), || {
        running.handle.stats().sessions_rejected_busy == 1
    });

    // The stalled reject must not head-of-line block the accept path
    // (the old server wrote the reject reply synchronously from the
    // accept loop): free the slot and serve a new session while the
    // staller still holds its connection open.
    driver::p1_shutdown(&mut a).unwrap();
    wait_until("slot to free", Duration::from_secs(5), || {
        running.handle.active_sessions() == 0
    });
    let mut c = connect(addr);
    assert_eq!(driver::p1_hello(&mut c, b"k", GENERATION_ANY).unwrap(), 0);
    driver::p1_shutdown(&mut c).unwrap();

    // Long after the server dropped the reject at its deadline, the Busy
    // reply is still sitting in the staller's receive buffer — it was
    // flushed before the drop, so even a slow client learns why it was
    // turned away.
    std::thread::sleep(Duration::from_millis(300));
    let late = TcpTransport::new(staller);
    late.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut late = late;
    match driver::parse_reply(&late.recv().unwrap()) {
        Err(CoreError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Busy as u8),
        other => panic!("expected Busy, got {other:?}"),
    }

    let stats = running.stop();
    assert_eq!(stats.sessions_rejected_busy, 1);
    assert_eq!(stats.sessions_accepted, 2);
    assert_eq!(stats.sessions_completed, 2);
}

/// A lone parked request takes the idle singleton fast-path, and its
/// reply must be byte-identical to the inline (batching-off) path: same
/// `DecMsg2` bytes, same per-request op counters, only the scheduling
/// differs.
#[test]
fn batch_singleton_reply_matches_inline_byte_for_byte() {
    let (pk, s1, s2) = keygen(200);
    let start = |config: ServerConfig| {
        let mut ring = Keyring::new();
        ring.insert(b"k", pk.clone(), s2.clone());
        start_server(Server::bind("127.0.0.1:0", Arc::new(ring), config).unwrap())
    };
    let inline_srv = start(quick_config());
    let batched_srv = start(ServerConfig {
        batch_max: 8,
        batch_wait: Duration::from_millis(20),
        ..quick_config()
    });

    let mut r = rand::rngs::StdRng::seed_from_u64(201);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = dlr::encrypt(&pk, &m, &mut r);
    let mut p1 = Party1::new(pk.clone(), s1);

    let mut ti = connect(inline_srv.addr());
    let mut tb = connect(batched_srv.addr());
    driver::p1_hello(&mut ti, b"k", GENERATION_ANY).unwrap();
    driver::p1_hello(&mut tb, b"k", GENERATION_ANY).unwrap();

    const ROUNDS: usize = 3;
    for _ in 0..ROUNDS {
        // One DecMsg1, the identical frame to both servers: dec_respond is
        // deterministic, so any divergence in the batched reply is a bug.
        let m1 = p1.dec_start(&ct, &mut r);
        let mut frame = vec![1u8]; // RequestTag::Decrypt
        frame.extend_from_slice(&m1.to_bytes());
        ti.send(Bytes::from(frame.clone())).unwrap();
        tb.send(Bytes::from(frame)).unwrap();
        let reply_inline = ti.recv().unwrap();
        let reply_batched = tb.recv().unwrap();
        assert_eq!(
            reply_inline, reply_batched,
            "singleton batch reply must be byte-identical to the inline path"
        );
        let body = driver::parse_reply(&reply_batched).unwrap();
        let m2 = DecMsg2::<E>::from_bytes(body, &pk.params).unwrap();
        assert_eq!(p1.dec_finish(&m2).unwrap(), m);
    }
    driver::p1_shutdown(&mut ti).unwrap();
    driver::p1_shutdown(&mut tb).unwrap();

    let inline_stats = inline_srv.stop();
    let batched_stats = batched_srv.stop();
    assert_eq!(inline_stats.requests_decrypt, ROUNDS as u64);
    assert_eq!(inline_stats.batched_requests, 0, "batching off must not park");
    assert_eq!(inline_stats.batch_flushes(), 0);
    assert_eq!(batched_stats.requests_decrypt, ROUNDS as u64);
    // A strict ping-pong client never has two requests in flight, so every
    // round is a singleton flush through the idle fast-path.
    assert_eq!(batched_stats.batched_requests, ROUNDS as u64);
    assert_eq!(batched_stats.batch_flushes_idle, ROUNDS as u64);
    assert_eq!(batched_stats.batch_size_hist[0], ROUNDS as u64);
    assert_eq!(batched_stats.batch_efficiency(), Some(1.0));
}

/// Two sessions bound to different keys park in the same batch window;
/// the flush splits the batch per key entry and both replies are correct.
/// Driven single-threaded (send both, then read both) so the two requests
/// land as close together as the transport allows; rounds repeat until a
/// multi-request flush is observed.
#[test]
fn mixed_key_batch_splits_per_key_and_stays_correct() {
    let (pk_a, s1_a, s2_a) = keygen(210);
    let (pk_b, s1_b, s2_b) = keygen(211);
    let mut ring = Keyring::new();
    ring.insert(b"ka", pk_a.clone(), s2_a);
    ring.insert(b"kb", pk_b.clone(), s2_b);
    let config = ServerConfig {
        workers: 1,
        shards: 1,
        batch_max: 0, // unbounded
        batch_wait: Duration::from_millis(10),
        ..quick_config()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), config).unwrap();
    let running = start_server(server);
    let addr = running.addr();

    let mut r = rand::rngs::StdRng::seed_from_u64(212);
    let m_a = <E as Pairing>::Gt::random(&mut r);
    let m_b = <E as Pairing>::Gt::random(&mut r);
    let ct_a = dlr::encrypt(&pk_a, &m_a, &mut r);
    let ct_b = dlr::encrypt(&pk_b, &m_b, &mut r);
    let mut p1_a = Party1::new(pk_a.clone(), s1_a);
    let mut p1_b = Party1::new(pk_b.clone(), s1_b);

    let mut ta = connect(addr);
    let mut tb = connect(addr);
    driver::p1_hello(&mut ta, b"ka", GENERATION_ANY).unwrap();
    driver::p1_hello(&mut tb, b"kb", GENERATION_ANY).unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut rounds = 0u64;
    loop {
        let m1_a = p1_a.dec_start(&ct_a, &mut r);
        let m1_b = p1_b.dec_start(&ct_b, &mut r);
        let mut fa = vec![1u8];
        fa.extend_from_slice(&m1_a.to_bytes());
        let mut fb = vec![1u8];
        fb.extend_from_slice(&m1_b.to_bytes());
        ta.send(Bytes::from(fa)).unwrap();
        tb.send(Bytes::from(fb)).unwrap();
        let body_a = driver::parse_reply(&ta.recv().unwrap()).unwrap().to_vec();
        let body_b = driver::parse_reply(&tb.recv().unwrap()).unwrap().to_vec();
        let m2_a = DecMsg2::<E>::from_bytes(&body_a, &pk_a.params).unwrap();
        let m2_b = DecMsg2::<E>::from_bytes(&body_b, &pk_b.params).unwrap();
        assert_eq!(p1_a.dec_finish(&m2_a).unwrap(), m_a);
        assert_eq!(p1_b.dec_finish(&m2_b).unwrap(), m_b);
        rounds += 1;

        // The only two sessions hold one request each, so any flush of
        // size >= 2 is exactly {key-a request, key-b request}: the split
        // path ran and both answers above were still correct.
        let hist = running.handle.stats().batch_size_hist;
        if hist.iter().skip(1).any(|&c| c > 0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no multi-request flush observed after {rounds} rounds"
        );
    }
    driver::p1_shutdown(&mut ta).unwrap();
    driver::p1_shutdown(&mut tb).unwrap();

    let stats = running.stop();
    assert_eq!(stats.requests_decrypt, 2 * rounds);
    assert_eq!(stats.batched_requests, 2 * rounds, "every decrypt parked");
    assert_eq!(stats.error_replies, 0);
    // A size-2 flush can only close by the adaptive window timer.
    assert!(stats.batch_flushes_timer >= 1);
}

/// A malformed request inside a batch fails alone: its sibling in the same
/// flush decrypts correctly, and the offending session survives to issue a
/// well-formed request afterwards (same contract as the inline path).
#[test]
fn malformed_request_in_batch_fails_alone() {
    let (pk, s1, s2) = keygen(220);
    let mut ring = Keyring::new();
    ring.insert(b"k", pk.clone(), s2);
    let config = ServerConfig {
        workers: 1,
        shards: 1,
        batch_max: 0,
        batch_wait: Duration::from_millis(10),
        ..quick_config()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), config).unwrap();
    let running = start_server(server);
    let addr = running.addr();

    let mut r = rand::rngs::StdRng::seed_from_u64(221);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = dlr::encrypt(&pk, &m, &mut r);
    let mut p1 = Party1::new(pk.clone(), s1);

    let mut good = connect(addr);
    let mut bad = connect(addr);
    driver::p1_hello(&mut good, b"k", GENERATION_ANY).unwrap();
    driver::p1_hello(&mut bad, b"k", GENERATION_ANY).unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut rounds = 0u64;
    loop {
        let m1 = p1.dec_start(&ct, &mut r);
        let mut frame = vec![1u8];
        frame.extend_from_slice(&m1.to_bytes());
        good.send(Bytes::from(frame)).unwrap();
        // Truncated decrypt body: parks (Decrypt tag, bound session) but
        // fails to parse inside the batch.
        bad.send(Bytes::from_static(&[1, 0, 0])).unwrap();

        let body = driver::parse_reply(&good.recv().unwrap()).unwrap().to_vec();
        let m2 = DecMsg2::<E>::from_bytes(&body, &pk.params).unwrap();
        assert_eq!(p1.dec_finish(&m2).unwrap(), m, "sibling must stay correct");
        match driver::parse_reply(&bad.recv().unwrap()) {
            Err(CoreError::Remote { code, .. }) => {
                assert_eq!(code, ErrorCode::BadRequest as u8)
            }
            other => panic!("expected BadRequest, got {other:?}"),
        }
        rounds += 1;

        let hist = running.handle.stats().batch_size_hist;
        if hist.iter().skip(1).any(|&c| c > 0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no multi-request flush observed after {rounds} rounds"
        );
    }

    // The session that kept sending garbage is still healthy.
    assert_eq!(driver::p1_decrypt(&mut p1, &ct, &mut bad, &mut r).unwrap(), m);
    driver::p1_shutdown(&mut good).unwrap();
    driver::p1_shutdown(&mut bad).unwrap();

    let stats = running.stop();
    assert_eq!(stats.requests_decrypt, rounds + 1);
    assert_eq!(stats.error_replies, rounds);
    assert_eq!(stats.batched_requests, 2 * rounds + 1);
}

/// Extends `panicking_dispatch_reclaims_slot_and_keeps_serving` to the
/// batch execute path: a panic while a flush is being dispatched must
/// release the slot of EVERY parked session in the group. Crashing more
/// sessions than `max_sessions` proves no parked slot leaks.
#[test]
fn panic_in_batch_execute_releases_every_parked_slot() {
    let (pk, _s1, s2) = keygen(230);
    let mut ring = Keyring::new();
    ring.insert(b"k", pk, s2);
    let config = ServerConfig {
        max_sessions: 2,
        workers: 1,
        shards: 1,
        batch_max: 0,
        batch_wait: Duration::from_millis(10),
        // Decrypt requests park, so the injected fault fires inside
        // batch_dispatch under the execute stage's catch_unwind.
        inject_panic_tag: Some(1),
        ..quick_config()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), config).unwrap();
    let running = start_server(server);
    let addr = running.addr();

    const ROUNDS: usize = 3;
    for _ in 0..ROUNDS {
        // Fill BOTH slots, park a decrypt on each, and let the flush panic.
        let mut a = connect(addr);
        let mut b = connect(addr);
        assert_eq!(driver::p1_hello(&mut a, b"k", GENERATION_ANY).unwrap(), 0);
        assert_eq!(driver::p1_hello(&mut b, b"k", GENERATION_ANY).unwrap(), 0);
        a.send(Bytes::from_static(&[1, 0, 0])).unwrap();
        b.send(Bytes::from_static(&[1, 0, 0])).unwrap();
        for t in [&mut a, &mut b] {
            match t.recv() {
                Err(TransportError::Disconnected) => {}
                other => panic!("expected the panicked session to be closed, got {other:?}"),
            }
        }
        wait_until("panicked slots to free", Duration::from_secs(5), || {
            running.handle.active_sessions() == 0
        });
    }

    // Both slots are reusable simultaneously afterwards.
    let mut a = connect(addr);
    let mut b = connect(addr);
    assert_eq!(driver::p1_hello(&mut a, b"k", GENERATION_ANY).unwrap(), 0);
    assert_eq!(driver::p1_hello(&mut b, b"k", GENERATION_ANY).unwrap(), 0);
    driver::p1_shutdown(&mut a).unwrap();
    driver::p1_shutdown(&mut b).unwrap();

    let stats = running.stop();
    // One panic per flushed group: 1 or 2 per round depending on whether
    // the pair clumped into one flush.
    assert!(
        stats.session_panics >= ROUNDS as u64 && stats.session_panics <= 2 * ROUNDS as u64,
        "unexpected panic count {}",
        stats.session_panics
    );
    assert_eq!(stats.batched_requests, 2 * ROUNDS as u64);
    assert_eq!(stats.sessions_accepted, 2 * ROUNDS as u64 + 2);
    assert_eq!(stats.sessions_completed, 2 * ROUNDS as u64 + 2);
    assert_eq!(stats.sessions_rejected_busy, 0, "no parked slot may leak");
    let msg = stats.last_panic.expect("panic message must be recorded");
    assert!(msg.contains("injected fault"), "unexpected message: {msg}");
}

#[test]
fn refresh_on_one_shard_does_not_stall_decrypts_on_another() {
    // Two keys that hash to different shards of a two-worker server.
    let shards = 2usize;
    let mut ids: Vec<Vec<u8>> = Vec::new();
    for i in 0..64 {
        let id = format!("key-{i}").into_bytes();
        if !ids
            .iter()
            .any(|x| dlr_server::shard_of(x, shards) == dlr_server::shard_of(&id, shards))
        {
            ids.push(id);
        }
        if ids.len() == 2 {
            break;
        }
    }
    let [id_a, id_b] = &ids[..] else {
        panic!("could not find ids on distinct shards")
    };
    let shard_a = dlr_server::shard_of(id_a, shards);
    let shard_b = dlr_server::shard_of(id_b, shards);
    assert_ne!(shard_a, shard_b);

    let (pk_a, s1_a, s2_a) = keygen(190);
    let (pk_b, s1_b, s2_b) = keygen(191);
    let mut ring = Keyring::new();
    ring.insert(id_a, pk_a.clone(), s2_a);
    ring.insert(id_b, pk_b.clone(), s2_b);
    let config = ServerConfig {
        workers: 2,
        shards,
        ..quick_config()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(ring), config).unwrap();
    let running = start_server(server);
    let addr = running.addr();

    const DECRYPTS: usize = 30;
    const REFRESHES: usize = 5;
    let start = Arc::new(Barrier::new(2));

    // Shard B: a client hammering decrypts while shard A refreshes.
    let decrypter = {
        let id_b = id_b.clone();
        let start = Arc::clone(&start);
        std::thread::spawn(move || {
            let mut r = rand::rngs::StdRng::seed_from_u64(192);
            let m = <E as Pairing>::Gt::random(&mut r);
            let ct = dlr::encrypt(&pk_b, &m, &mut r);
            let mut p1 = Party1::new(pk_b, s1_b);
            let mut t = connect(addr);
            driver::p1_hello(&mut t, &id_b, GENERATION_ANY).unwrap();
            start.wait();
            let mut max_latency = Duration::ZERO;
            for _ in 0..DECRYPTS {
                let t0 = Instant::now();
                assert_eq!(driver::p1_decrypt(&mut p1, &ct, &mut t, &mut r).unwrap(), m);
                max_latency = max_latency.max(t0.elapsed());
            }
            driver::p1_shutdown(&mut t).unwrap();
            max_latency
        })
    };

    // Shard A: its key's generation advances while B's session (bound to
    // an untouched key on another worker) keeps decrypting.
    let mut r = rand::rngs::StdRng::seed_from_u64(193);
    let mut p1 = Party1::new(pk_a, s1_a);
    let mut t = connect(addr);
    driver::p1_hello(&mut t, id_a, GENERATION_ANY).unwrap();
    start.wait();
    for _ in 0..REFRESHES {
        driver::p1_refresh(&mut p1, &mut t, &mut r).unwrap();
    }
    driver::p1_shutdown(&mut t).unwrap();
    let max_latency = decrypter.join().unwrap();

    // A slow shard-A refresh may briefly share the wire, but a decrypt
    // on shard B must never wait out a cross-shard lock.
    assert!(
        max_latency < Duration::from_secs(2),
        "shard-B decrypt stalled for {max_latency:?}"
    );

    let stats = running.stop();
    assert_eq!(stats.refreshes, REFRESHES as u64);
    assert_eq!(stats.requests_decrypt, DECRYPTS as u64);
    assert_eq!(stats.error_replies, 0);
    assert_eq!(stats.shards.len(), shards);
    // Requests were attributed to the shard their key hashes to.
    assert_eq!(stats.shards[shard_a].requests, REFRESHES as u64 + 1);
    assert_eq!(stats.shards[shard_b].requests, DECRYPTS as u64 + 1);
    assert_eq!(stats.shards[shard_a].sessions, 1);
    assert_eq!(stats.shards[shard_b].sessions, 1);
}
