//! Key registry: key id → `(PublicKey, Party2)` with a per-key generation
//! lock and durable share persistence.
//!
//! One server process serves many key pairs; a session selects its key via
//! the wire hello ([`dlr_core::driver::HelloMsg`]). Each key's `P2` state
//! lives behind a single mutex — the **generation lock**: decrypt requests
//! hold it for the duration of `dec_respond`, a refresh holds it across
//! `ref_respond` + `ref_complete` + share persistence + generation bump.
//! A decrypt therefore never observes a half-refreshed share, and the
//! generation counter read under the same lock is always consistent with
//! the share that produced a response.
//!
//! ## Durability
//!
//! A key registered with a persist path gets its refreshed [`Share2`]
//! written **atomically** (temp file + rename) the moment the refresh
//! completes, while the generation lock is still held. A crash at any
//! point leaves the share file either at the old or the new generation —
//! never truncated, never torn. This is the §4.4 period structure: the
//! share on disk is the device's long-term secret state, and rolling it
//! back to a pre-refresh generation would let leakage from consecutive
//! periods accumulate against one share.

use dlr_core::dlr::{Party2, PublicKey, Share2};
use dlr_curve::Pairing;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Mutable per-key state guarded by the generation lock.
pub struct KeyState<E: Pairing> {
    /// The `P2` protocol state machine for this key.
    pub p2: Party2<E>,
    /// Refresh count since registration. Sessions bind to a generation at
    /// hello time; a mismatch on a later request means a refresh won the
    /// race and the client must re-sync.
    pub generation: u64,
    persist_path: Option<PathBuf>,
}

/// One registered key: identity plus locked state. The public key lives
/// *outside* the generation lock — it never changes across refreshes, and
/// keeping it here lets [`warm`](Self::warm) rebuild fixed-base tables
/// without touching the lock that serializes sessions.
pub struct KeyEntry<E: Pairing> {
    id: Vec<u8>,
    pk: PublicKey<E>,
    state: Mutex<KeyState<E>>,
}

impl<E: Pairing> KeyEntry<E> {
    /// The key's registry id.
    pub fn id(&self) -> &[u8] {
        &self.id
    }

    /// The key's public half (lock-free — immutable for the entry's life).
    pub fn public_key(&self) -> &PublicKey<E> {
        &self.pk
    }

    /// Build the key's fixed-base exponentiation tables (`z` tables plus
    /// the process-wide generator tables) **without acquiring the
    /// generation lock**. The keyring calls this at registration and the
    /// server calls it again after each committed refresh, so steady-state
    /// sessions never pay table precompute and a warm-up never stalls an
    /// in-flight decrypt. Idempotent: a second call finds the tables
    /// already built. Clones of the public key (including the one inside
    /// `P2`'s state) share the same tables.
    pub fn warm(&self) {
        self.pk.warm();
    }

    /// Current generation (brief lock acquisition).
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Run `f` under the generation lock.
    pub fn with_state<T>(&self, f: impl FnOnce(&mut KeyState<E>) -> T) -> T {
        f(&mut self.state.lock())
    }

    /// Complete a refresh **under an already-held state lock**: persist
    /// the new share atomically (if a path is registered) and bump the
    /// generation. The generation advances even if persistence fails —
    /// `P2`'s in-memory share has already moved past `ref_complete`, so
    /// the wire reply must stay consistent with it; the I/O error is
    /// returned alongside for the caller to count/report.
    pub fn commit_refresh(state: &mut KeyState<E>) -> (u64, io::Result<()>) {
        let persisted = match &state.persist_path {
            Some(path) => persist_atomically(path, &state.p2.share().to_bytes()),
            None => Ok(()),
        };
        state.generation += 1;
        (state.generation, persisted)
    }

    /// Persist the current share (used at graceful shutdown; refreshes
    /// already persisted eagerly, so this is a no-op-equivalent rewrite).
    pub fn persist(&self) -> io::Result<()> {
        let state = self.state.lock();
        match &state.persist_path {
            Some(path) => persist_atomically(path, &state.p2.share().to_bytes()),
            None => Ok(()),
        }
    }
}

/// Write `bytes` to `path` atomically: write + fsync a sibling temp file,
/// then rename over the target. Readers (and a crash-restarted server)
/// observe either the old or the new content, never a torn write.
pub fn persist_atomically(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// The server's key registry. Insertion order defines the default key
/// (first inserted) used by sessions that skip the hello.
pub struct Keyring<E: Pairing> {
    entries: Vec<Arc<KeyEntry<E>>>,
    by_id: BTreeMap<Vec<u8>, usize>,
    public_keys: BTreeMap<Vec<u8>, PublicKey<E>>,
}

impl<E: Pairing> Default for Keyring<E> {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            by_id: BTreeMap::new(),
            public_keys: BTreeMap::new(),
        }
    }
}

impl<E: Pairing> Keyring<E> {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a key without persistence (tests, ephemeral keys).
    pub fn insert(&mut self, id: &[u8], pk: PublicKey<E>, share: Share2<E>) {
        self.insert_inner(id, pk, share, None);
    }

    /// Register a key whose refreshed share is persisted to `path` after
    /// every refresh (and at graceful shutdown).
    pub fn insert_persistent(
        &mut self,
        id: &[u8],
        pk: PublicKey<E>,
        share: Share2<E>,
        path: PathBuf,
    ) {
        self.insert_inner(id, pk, share, Some(path));
    }

    fn insert_inner(
        &mut self,
        id: &[u8],
        pk: PublicKey<E>,
        share: Share2<E>,
        persist_path: Option<PathBuf>,
    ) {
        let entry = Arc::new(KeyEntry {
            id: id.to_vec(),
            pk: pk.clone(),
            state: Mutex::new(KeyState {
                p2: Party2::new(pk.clone(), share),
                generation: 0,
                persist_path,
            }),
        });
        // Pay table precompute at key load, not in the first session.
        entry.warm();
        if let Some(&idx) = self.by_id.get(id) {
            self.entries[idx] = entry;
        } else {
            self.by_id.insert(id.to_vec(), self.entries.len());
            self.entries.push(entry);
        }
        self.public_keys.insert(id.to_vec(), pk);
    }

    /// Look up a key by id.
    pub fn get(&self, id: &[u8]) -> Option<Arc<KeyEntry<E>>> {
        self.by_id.get(id).map(|&idx| Arc::clone(&self.entries[idx]))
    }

    /// The public key registered under `id`.
    pub fn public_key(&self, id: &[u8]) -> Option<&PublicKey<E>> {
        self.public_keys.get(id)
    }

    /// The default key (first registered), if any.
    pub fn default_entry(&self) -> Option<Arc<KeyEntry<E>>> {
        self.entries.first().map(Arc::clone)
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no key is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over all entries (registration order).
    pub fn entries(&self) -> impl Iterator<Item = &Arc<KeyEntry<E>>> {
        self.entries.iter()
    }

    /// Persist every key's current share (graceful-shutdown path).
    pub fn persist_all(&self) -> io::Result<()> {
        for entry in &self.entries {
            entry.persist()?;
        }
        Ok(())
    }
}

/// Which shard a key id belongs to, out of `shards` total.
///
/// Re-exported from `dlr-protocol`, where the FNV-1a ring hash lives so
/// that client-side routing ([`dlr_core::driver::TopologyMsg`]) and
/// server-side keyring placement agree byte-for-byte.
pub use dlr_protocol::shard_of;

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_core::dlr;
    use dlr_core::params::SchemeParams;
    use dlr_curve::Toy;
    use rand::SeedableRng;

    type E = Toy;

    fn keygen(seed: u64) -> (PublicKey<E>, dlr::Share1<E>, Share2<E>) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        dlr::keygen::<E, _>(params, &mut r)
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8] {
            for id in [b"alpha".as_slice(), b"beta", b"", b"k-0123456789"] {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards), "deterministic");
            }
        }
        // degenerate count treated as one shard
        assert_eq!(shard_of(b"anything", 0), 0);
    }

    #[test]
    fn lookup_and_default() {
        let (pk, _s1, s2) = keygen(1);
        let (pk2, _s1b, s2b) = keygen(2);
        let mut ring = Keyring::<E>::new();
        ring.insert(b"alpha", pk, s2);
        ring.insert(b"beta", pk2, s2b);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.get(b"alpha").unwrap().id(), b"alpha");
        assert_eq!(ring.get(b"beta").unwrap().generation(), 0);
        assert!(ring.get(b"gamma").is_none());
        assert_eq!(ring.default_entry().unwrap().id(), b"alpha");
        assert!(ring.public_key(b"alpha").is_some());
    }

    #[test]
    fn insert_warms_fixed_base_tables() {
        let (pk, _s1, s2) = keygen(6);
        assert!(!pk.tables_warm(), "fresh keygen must not prebuild tables");
        let mut ring = Keyring::<E>::new();
        ring.insert(b"k", pk.clone(), s2);
        // the entry's copy, the ring's lookup copy, and the caller's
        // original all share one table cell
        assert!(ring.get(b"k").unwrap().public_key().tables_warm());
        assert!(ring.public_key(b"k").unwrap().tables_warm());
        assert!(pk.tables_warm());
    }

    #[test]
    fn warm_does_not_take_the_generation_lock() {
        let (pk, _s1, s2) = keygen(7);
        let mut ring = Keyring::<E>::new();
        ring.insert(b"k", pk, s2);
        let entry = ring.get(b"k").unwrap();

        // Hold the generation lock in another thread for longer than any
        // warm-up could reasonably take; `warm` must complete while the
        // lock is held, or sessions would stall behind epoch precompute.
        let hold = std::time::Duration::from_millis(400);
        let entry2 = Arc::clone(&entry);
        let locked = std::sync::mpsc::channel();
        let holder = std::thread::spawn(move || {
            entry2.with_state(|_state| {
                locked.0.send(()).unwrap();
                std::thread::sleep(hold);
            });
        });
        locked.1.recv().unwrap();
        let started = std::time::Instant::now();
        entry.warm();
        assert!(
            started.elapsed() < hold,
            "warm() blocked on the generation lock"
        );
        holder.join().unwrap();
    }

    #[test]
    fn atomic_persist_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dlr-keyring-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sk2.dlr");

        let (pk, _s1, s2) = keygen(3);
        let expect = s2.to_bytes();
        let mut ring = Keyring::<E>::new();
        ring.insert_persistent(b"k", pk.clone(), s2, path.clone());
        ring.persist_all().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), expect);
        // reparseable
        assert!(Share2::<E>::from_bytes(&std::fs::read(&path).unwrap(), &pk.params).is_ok());
        // no stray temp file left behind
        assert!(!dir.join("sk2.dlr.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_refresh_bumps_generation_and_persists() {
        let dir = std::env::temp_dir().join(format!("dlr-keyring2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sk2.dlr");

        let (pk, s1, s2) = keygen(4);
        let mut ring = Keyring::<E>::new();
        ring.insert_persistent(b"k", pk.clone(), s2, path.clone());
        let entry = ring.get(b"k").unwrap();

        // Run an actual refresh against the locked state, then commit.
        let mut r = rand::rngs::StdRng::seed_from_u64(5);
        let mut p1 = dlr::Party1::new(pk.clone(), s1);
        let generation = entry.with_state(|state| {
            let m1 = p1.ref_start(&mut r);
            let m2 = state.p2.ref_respond(&m1, &mut r).unwrap();
            state.p2.ref_complete().unwrap();
            p1.ref_finish(&m2).unwrap();
            p1.ref_complete().unwrap();
            let (generation, persisted) = KeyEntry::commit_refresh(state);
            persisted.unwrap();
            generation
        });
        assert_eq!(generation, 1);
        assert_eq!(entry.generation(), 1);
        // disk holds the *new* share
        let on_disk = Share2::<E>::from_bytes(&std::fs::read(&path).unwrap(), &pk.params).unwrap();
        entry.with_state(|state| assert_eq!(&on_disk, state.p2.share()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
