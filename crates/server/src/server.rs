//! The concurrent `P2` service: acceptor, session workers, epoch
//! scheduler, and aggregated statistics.
//!
//! ## Threading model
//!
//! [`Server::run`] blocks the calling thread on a non-blocking accept
//! loop; every accepted connection gets a scoped session worker thread
//! (vendored `crossbeam::thread::scope`, the same pattern as
//! `dlr-curve/src/parallel.rs`), bounded by
//! [`ServerConfig::max_sessions`]. Connections arriving above the bound
//! are answered with a structured [`ErrorCode::Busy`] reply and closed —
//! backpressure the client's retry policy
//! ([`dlr_core::driver::p1_decrypt_with_retry`]) understands.
//!
//! A background **epoch scheduler** thread marks leakage-period
//! boundaries (paper §4.4): every [`ServerConfig::epoch_interval`] (or on
//! [`ServerHandle::force_epoch`]) it bumps the epoch counter and invokes
//! the registered epoch hook. The hook is where deployment-specific
//! refresh coordination lives — refresh is a *two-party* protocol, so the
//! scheduler cannot rotate the share alone; the hook typically nudges the
//! `P1` co-device, which then drives a wire refresh through a normal
//! session (the integration tests do exactly this).
//!
//! ## Generation binding
//!
//! Sessions bind to a key **generation** at accept/hello time. Decrypt
//! and refresh requests re-check the binding under the key's generation
//! lock; a session whose key was refreshed since binding receives
//! [`ErrorCode::StaleGeneration`] instead of a garbage response computed
//! from mismatched shares. The session stays open — the client re-hellos
//! (with its refreshed `P1` share) and continues.

use crate::keyring::{persist_atomically, KeyEntry, Keyring};
use bytes::Bytes;
use dlr_core::driver::{
    error_reply, error_reply_for, ok_reply, p2_handle_frame, ErrorCode, HelloMsg, RequestTag,
    GENERATION_ANY,
};
use dlr_curve::Pairing;
use dlr_metrics::Report;
use dlr_protocol::transport::TcpTransport;
use dlr_protocol::{Encoder, Transport, TransportError, WireStats};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-session bound; further connections get a
    /// [`ErrorCode::Busy`] reply and are closed.
    pub max_sessions: usize,
    /// Per-session idle limit: a session receiving nothing for this long
    /// is closed (read deadline).
    pub read_timeout: Duration,
    /// Socket poll quantum: workers wake this often to check the
    /// shutdown flag and accumulate idle time.
    pub poll_interval: Duration,
    /// Leakage-period length: the epoch scheduler fires every interval.
    /// `None` disables timed epochs ([`ServerHandle::force_epoch`] still
    /// works).
    pub epoch_interval: Option<Duration>,
    /// How often to dump aggregated stats JSON to [`Self::stats_path`].
    pub stats_interval: Option<Duration>,
    /// Where periodic + final stats dumps go (atomic temp+rename).
    pub stats_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_sessions: 32,
            read_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(50),
            epoch_interval: None,
            stats_interval: None,
            stats_path: None,
        }
    }
}

/// Bound on retained per-round latency samples in the aggregate wire
/// stats — a long-lived server must not grow its sample buffer forever.
const MAX_LATENCY_SAMPLES: usize = 8192;

/// Monotonic service counters, updated lock-free by the workers.
#[derive(Debug, Default)]
pub struct ServerStats {
    sessions_accepted: AtomicU64,
    sessions_rejected_busy: AtomicU64,
    sessions_completed: AtomicU64,
    requests_hello: AtomicU64,
    requests_decrypt: AtomicU64,
    requests_refresh: AtomicU64,
    error_replies: AtomicU64,
    epochs: AtomicU64,
    refreshes: AtomicU64,
    persist_failures: AtomicU64,
    wire: parking_lot::Mutex<WireStats>,
}

impl ServerStats {
    fn merge_wire(&self, session: &WireStats) {
        let mut agg = self.wire.lock();
        agg.merge(session);
        let len = agg.round_latency_ns.len();
        if len > MAX_LATENCY_SAMPLES {
            agg.round_latency_ns.drain(..len - MAX_LATENCY_SAMPLES);
        }
    }

    /// Consistent point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions_accepted: self.sessions_accepted.load(Ordering::Relaxed),
            sessions_rejected_busy: self.sessions_rejected_busy.load(Ordering::Relaxed),
            sessions_completed: self.sessions_completed.load(Ordering::Relaxed),
            requests_hello: self.requests_hello.load(Ordering::Relaxed),
            requests_decrypt: self.requests_decrypt.load(Ordering::Relaxed),
            requests_refresh: self.requests_refresh.load(Ordering::Relaxed),
            error_replies: self.error_replies.load(Ordering::Relaxed),
            epochs: self.epochs.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            persist_failures: self.persist_failures.load(Ordering::Relaxed),
            wire: self.wire.lock().clone(),
        }
    }
}

/// Plain-value copy of [`ServerStats`] plus the merged wire statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted into a session worker.
    pub sessions_accepted: u64,
    /// Connections refused with [`ErrorCode::Busy`].
    pub sessions_rejected_busy: u64,
    /// Sessions that ended (shutdown, disconnect, or idle deadline).
    pub sessions_completed: u64,
    /// Hello requests served.
    pub requests_hello: u64,
    /// Decrypt requests served successfully.
    pub requests_decrypt: u64,
    /// Refresh requests served successfully.
    pub requests_refresh: u64,
    /// Structured error frames sent.
    pub error_replies: u64,
    /// Epoch boundaries marked by the scheduler.
    pub epochs: u64,
    /// Share refreshes committed (generation bumps).
    pub refreshes: u64,
    /// Refresh commits whose share persistence failed.
    pub persist_failures: u64,
    /// Wire statistics merged across all completed sessions.
    pub wire: WireStats,
}

impl StatsSnapshot {
    /// Render as a `dlr-metrics` [`Report`]: counters as metadata, merged
    /// wire statistics as a wire row, plus any spans recorded in this
    /// process. Serializes to the standard report JSON/CSV schema.
    pub fn to_report(&self) -> Report {
        let mut report = Report::capture()
            .with_meta("component", "dlr-server")
            .with_meta("sessions_accepted", &self.sessions_accepted.to_string())
            .with_meta(
                "sessions_rejected_busy",
                &self.sessions_rejected_busy.to_string(),
            )
            .with_meta("sessions_completed", &self.sessions_completed.to_string())
            .with_meta("requests_hello", &self.requests_hello.to_string())
            .with_meta("requests_decrypt", &self.requests_decrypt.to_string())
            .with_meta("requests_refresh", &self.requests_refresh.to_string())
            .with_meta("error_replies", &self.error_replies.to_string())
            .with_meta("epochs", &self.epochs.to_string())
            .with_meta("refreshes", &self.refreshes.to_string())
            .with_meta("persist_failures", &self.persist_failures.to_string());
        report.push_wire("server.sessions", self.wire.clone());
        report
    }
}

/// Invoked by the epoch scheduler at each period boundary with the new
/// epoch number.
pub type EpochHook = Box<dyn FnMut(u64) + Send>;

struct Shared {
    shutdown: AtomicBool,
    epoch: AtomicU64,
    active: AtomicUsize,
    /// Manual epoch kicks ([`ServerHandle::force_epoch`]); the scheduler
    /// compares against its own seen-count under [`Self::wake`].
    kick: Mutex<u64>,
    wake: Condvar,
    stats: ServerStats,
    local_addr: SocketAddr,
}

/// Cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful shutdown: stop accepting, let workers drain at
    /// their next poll, persist shares, exit [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
    }

    /// Trigger an epoch boundary now (asynchronous: the scheduler thread
    /// runs the hook; observe completion via [`Self::epoch`]).
    pub fn force_epoch(&self) {
        {
            let mut kicks = self.shared.kick.lock().unwrap();
            *kicks += 1;
        }
        self.shared.wake.notify_all();
    }

    /// Epoch boundaries marked so far.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Sessions currently being served.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The listener's bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }
}

/// Concurrent key-share service over a [`Keyring`].
pub struct Server<E: Pairing> {
    listener: TcpListener,
    keyring: Arc<Keyring<E>>,
    config: ServerConfig,
    shared: Arc<Shared>,
    epoch_hook: Option<EpochHook>,
}

impl<E: Pairing> Server<E> {
    /// Bind a listener and construct the server around it.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        keyring: Arc<Keyring<E>>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Self::new(TcpListener::bind(addr)?, keyring, config)
    }

    /// Construct the server around an existing listener.
    pub fn new(
        listener: TcpListener,
        keyring: Arc<Keyring<E>>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            keyring,
            config,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                epoch: AtomicU64::new(0),
                active: AtomicUsize::new(0),
                kick: Mutex::new(0),
                wake: Condvar::new(),
                stats: ServerStats::default(),
                local_addr,
            }),
            epoch_hook: None,
        })
    }

    /// Remote control valid for the lifetime of the process.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Register the epoch-boundary hook (called from the scheduler
    /// thread, outside any lock).
    pub fn set_epoch_hook(&mut self, hook: impl FnMut(u64) + Send + 'static) {
        self.epoch_hook = Some(Box::new(hook));
    }

    /// Serve until [`ServerHandle::shutdown`] (or a fatal accept error).
    ///
    /// Blocks the calling thread. On exit every session worker has been
    /// joined, all shares persisted, and a final stats dump written (when
    /// configured); returns the final statistics.
    pub fn run(mut self) -> io::Result<StatsSnapshot> {
        self.listener.set_nonblocking(true)?;
        let shared = Arc::clone(&self.shared);
        let keyring = Arc::clone(&self.keyring);
        let config = self.config.clone();
        let mut hook = self.epoch_hook.take();

        let mut accept_err: Option<io::Error> = None;
        crossbeam::thread::scope(|s| {
            {
                let shared = Arc::clone(&shared);
                let interval = config.epoch_interval;
                let hook = &mut hook;
                s.spawn(move || epoch_scheduler(&shared, interval, hook));
            }
            if let (Some(interval), Some(path)) = (config.stats_interval, &config.stats_path) {
                let shared = Arc::clone(&shared);
                let path = path.clone();
                s.spawn(move || stats_dumper(&shared, interval, &path));
            }

            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if shared.active.load(Ordering::Acquire) >= config.max_sessions {
                            shared
                                .stats
                                .sessions_rejected_busy
                                .fetch_add(1, Ordering::Relaxed);
                            let mut t = TcpTransport::new(stream);
                            let _ = t.send(error_reply(
                                ErrorCode::Busy,
                                "server at session limit; retry after backoff",
                            ));
                            continue;
                        }
                        shared.stats.sessions_accepted.fetch_add(1, Ordering::Relaxed);
                        shared.active.fetch_add(1, Ordering::AcqRel);
                        let shared = Arc::clone(&shared);
                        let keyring = Arc::clone(&keyring);
                        let config = config.clone();
                        s.spawn(move || {
                            session_worker(stream, &shared, &keyring, &config);
                            shared.active.fetch_sub(1, Ordering::AcqRel);
                            shared.stats.sessions_completed.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        accept_err = Some(e);
                        shared.shutdown.store(true, Ordering::Release);
                        break;
                    }
                }
            }
            // Wake the scheduler/dumper so the scope can join them; the
            // workers notice the flag at their next poll tick.
            shared.shutdown.store(true, Ordering::Release);
            shared.wake.notify_all();
        });

        if let Some(e) = accept_err {
            return Err(e);
        }
        self.keyring.persist_all()?;
        let snapshot = shared.stats.snapshot();
        if let Some(path) = &config.stats_path {
            persist_atomically(path, snapshot.to_report().to_json().as_bytes())?;
        }
        Ok(snapshot)
    }
}

fn epoch_scheduler(shared: &Shared, interval: Option<Duration>, hook: &mut Option<EpochHook>) {
    let mut seen_kicks = 0u64;
    loop {
        let fired;
        {
            let mut kicks = shared.kick.lock().unwrap();
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if *kicks > seen_kicks {
                seen_kicks = *kicks;
                fired = true;
            } else {
                let timed_out = match interval {
                    Some(d) => {
                        let (guard, result) = shared.wake.wait_timeout(kicks, d).unwrap();
                        kicks = guard;
                        result.timed_out()
                    }
                    None => {
                        kicks = shared.wake.wait(kicks).unwrap();
                        false
                    }
                };
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if *kicks > seen_kicks {
                    seen_kicks = *kicks;
                    fired = true;
                } else {
                    fired = timed_out;
                }
            }
        }
        if fired {
            let epoch = shared.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            shared.stats.epochs.fetch_add(1, Ordering::Relaxed);
            // The hook runs outside every lock: it may open sessions
            // against this very server (wire refresh via P1).
            if let Some(h) = hook.as_mut() {
                h(epoch);
            }
        }
    }
}

fn stats_dumper(shared: &Shared, interval: Duration, path: &std::path::Path) {
    let step = Duration::from_millis(50).min(interval);
    let mut since = Duration::ZERO;
    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(step);
        since += step;
        if since >= interval {
            since = Duration::ZERO;
            let _ = persist_atomically(path, shared.stats.snapshot().to_report().to_json().as_bytes());
        }
    }
}

/// Serve one connection until session shutdown, disconnect, idle
/// deadline, or server shutdown.
fn session_worker<E: Pairing>(
    stream: TcpStream,
    shared: &Shared,
    keyring: &Keyring<E>,
    config: &ServerConfig,
) {
    let mut transport = TcpTransport::new(stream);
    let _ = transport.set_nodelay(true);
    // Short poll deadline so the worker can observe the shutdown flag;
    // idle time accumulates across polls up to the real read deadline.
    // Partial frames survive a poll tick (the transport buffers them).
    let _ = transport.set_read_timeout(Some(config.poll_interval));

    let mut session = Session {
        entry: keyring.default_entry(),
        bound_generation: 0,
    };
    session.bound_generation = session.entry.as_ref().map_or(0, |e| e.generation());

    let mut rng = rand::thread_rng();
    let mut wire = WireStats::default();
    let mut idle = Duration::ZERO;

    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let req = match transport.recv() {
            Ok(frame) => {
                idle = Duration::ZERO;
                frame
            }
            Err(TransportError::TimedOut) => {
                idle += config.poll_interval;
                if idle >= config.read_timeout {
                    break;
                }
                continue;
            }
            Err(_) => break, // disconnect / hard I/O failure
        };
        let started = Instant::now();
        wire.frames_received += 1;
        wire.bytes_received += 4 + req.len() as u64;

        match dispatch(&req, &mut session, keyring, &shared.stats, &mut rng) {
            None => break, // session shutdown tag
            Some(reply) => {
                let reply_len = reply.len() as u64;
                if transport.send(reply).is_err() {
                    break;
                }
                wire.frames_sent += 1;
                wire.bytes_sent += 4 + reply_len;
                wire.round_latency_ns.push(started.elapsed().as_nanos() as u64);
            }
        }
    }
    shared.stats.merge_wire(&wire);
}

struct Session<E: Pairing> {
    entry: Option<Arc<KeyEntry<E>>>,
    bound_generation: u64,
}

/// Handle one request frame; `None` ends the session (shutdown tag).
fn dispatch<E: Pairing, R: rand::RngCore>(
    req: &[u8],
    session: &mut Session<E>,
    keyring: &Keyring<E>,
    stats: &ServerStats,
    rng: &mut R,
) -> Option<Bytes> {
    let err = |stats: &ServerStats, code, detail: &str| {
        stats.error_replies.fetch_add(1, Ordering::Relaxed);
        Some(error_reply(code, detail))
    };

    let Some(&tag_byte) = req.first() else {
        return err(stats, ErrorCode::BadRequest, "empty frame");
    };
    match RequestTag::from_u8(tag_byte) {
        None => err(stats, ErrorCode::UnknownTag, "unknown request tag"),
        Some(RequestTag::Shutdown) => None,
        Some(RequestTag::Hello) => {
            let hello = match HelloMsg::from_bytes(&req[1..]) {
                Ok(h) => h,
                Err(e) => {
                    stats.error_replies.fetch_add(1, Ordering::Relaxed);
                    return Some(error_reply_for(&e));
                }
            };
            let Some(entry) = keyring.get(&hello.key_id) else {
                return err(
                    stats,
                    ErrorCode::UnknownKey,
                    &format!("no key \"{}\"", String::from_utf8_lossy(&hello.key_id)),
                );
            };
            let generation = entry.generation();
            if hello.generation != GENERATION_ANY && hello.generation != generation {
                return err(
                    stats,
                    ErrorCode::StaleGeneration,
                    &format!("server holds generation {generation}"),
                );
            }
            session.entry = Some(entry);
            session.bound_generation = generation;
            stats.requests_hello.fetch_add(1, Ordering::Relaxed);
            let mut enc = Encoder::new();
            enc.put_u64(generation);
            Some(ok_reply(&enc.finish()))
        }
        Some(tag @ (RequestTag::Decrypt | RequestTag::Refresh)) => {
            let Some(entry) = session.entry.as_ref() else {
                return err(stats, ErrorCode::UnknownKey, "no key bound to session");
            };
            let bound = session.bound_generation;
            // The generation lock: binding check, protocol step, and (for
            // refresh) persistence + generation bump are one critical
            // section — a decrypt can never interleave with a
            // half-committed refresh.
            let (reply, rebind) = entry.with_state(|state| {
                if state.generation != bound {
                    stats.error_replies.fetch_add(1, Ordering::Relaxed);
                    let detail = format!(
                        "session bound to generation {bound}, key at {}",
                        state.generation
                    );
                    return (error_reply(ErrorCode::StaleGeneration, &detail), None);
                }
                match p2_handle_frame(&mut state.p2, state.generation, req, rng) {
                    Ok((_, Some(body))) => {
                        if tag == RequestTag::Refresh {
                            let (generation, persisted) = KeyEntry::commit_refresh(state);
                            if persisted.is_err() {
                                stats.persist_failures.fetch_add(1, Ordering::Relaxed);
                            }
                            stats.requests_refresh.fetch_add(1, Ordering::Relaxed);
                            stats.refreshes.fetch_add(1, Ordering::Relaxed);
                            (ok_reply(&body), Some(generation))
                        } else {
                            stats.requests_decrypt.fetch_add(1, Ordering::Relaxed);
                            (ok_reply(&body), None)
                        }
                    }
                    Ok((_, None)) => {
                        // unreachable for Decrypt/Refresh, but keep the
                        // wire sane if it ever happens
                        stats.error_replies.fetch_add(1, Ordering::Relaxed);
                        (error_reply(ErrorCode::Internal, "no reply produced"), None)
                    }
                    Err(e) => {
                        stats.error_replies.fetch_add(1, Ordering::Relaxed);
                        (error_reply_for(&e), None)
                    }
                }
            });
            if let Some(generation) = rebind {
                // Refresh committed. Re-warm the key's fixed-base tables
                // *after* the generation lock is released — idempotent when
                // already warm, and never serialized against other
                // sessions' decrypts.
                entry.warm();
                session.bound_generation = generation;
            }
            Some(reply)
        }
    }
}
