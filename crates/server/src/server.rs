//! The concurrent `P2` service: readiness event loops, sharded keyring
//! ownership, epoch scheduler, and aggregated statistics.
//!
//! ## Threading model
//!
//! [`Server::run`] blocks the calling thread on an **acceptor event
//! loop** (a vendored `polling` epoll/kqueue [`polling::Poller`] watching
//! the listener) and spawns a small fixed set of **worker event loops**
//! ([`ServerConfig::workers`]). Every accepted connection is made
//! nonblocking and handed to a worker, where a per-connection frame state
//! machine (read → decode/execute → encode → write, built from
//! [`dlr_protocol::transport::FrameReader`] /
//! [`dlr_protocol::transport::FrameWriter`]) drives it under per-state
//! deadlines: [`ServerConfig::read_timeout`] while waiting for a request,
//! [`ServerConfig::write_timeout`] while flushing a reply. No session
//! ever owns a thread, so thousands of concurrent connections cost a few
//! file descriptors each, not a stack.
//!
//! Connections arriving above [`ServerConfig::max_sessions`] are answered
//! with a structured [`ErrorCode::Busy`] reply — backpressure the
//! client's retry policy ([`dlr_core::driver::p1_decrypt_with_retry`])
//! understands. The reject is flushed **nonblockingly** on a worker loop
//! under the short [`ServerConfig::reject_write_timeout`]; a stalled or
//! adversarial rejected client is dropped at the deadline and can never
//! head-of-line-block the accept path.
//!
//! ## Keyring sharding
//!
//! Keys are sharded by id ([`crate::keyring::shard_of`], FNV-1a over the
//! key id modulo [`ServerConfig::shards`]) and each shard is owned by
//! worker `shard % workers`. After a connection's first served request
//! binds it to a key, the connection **migrates** to that key's owner
//! worker (its socket, buffered partial frames, and statistics travel
//! with it). Steady-state, every session touching a key runs on one
//! loop, so the per-key generation lock is only ever taken from a single
//! thread — a long refresh on shard A cannot stall decrypts on shard B,
//! because they execute on different workers with no shared lock.
//!
//! A background **epoch scheduler** thread marks leakage-period
//! boundaries (paper §4.4): every [`ServerConfig::epoch_interval`] (or on
//! [`ServerHandle::force_epoch`]) it bumps the epoch counter, wakes every
//! worker loop through its poller's eventfd/pipe (each worker re-warms
//! its own shards' fixed-base tables outside any lock and records the
//! boundary in its shard statistics), and invokes the registered epoch
//! hook. The hook is where deployment-specific refresh coordination
//! lives — refresh is a *two-party* protocol, so the scheduler cannot
//! rotate the share alone; the hook typically nudges the `P1` co-device,
//! which then drives a wire refresh through a normal session (the
//! integration tests do exactly this). The scheduler's kick mutex
//! recovers from poisoning: a panicking waiter cannot take the epoch
//! clock down with it.
//!
//! ## Dynamic cross-request batching
//!
//! With [`ServerConfig::batch_max`] ≠ 1, each worker runs a **batch
//! executor**: decrypt requests that finish the decode stage while the
//! worker's batch window is open park in a worker-local queue instead of
//! executing inline. The window closes on a size cap (`batch_max`), a
//! delay cap ([`ServerConfig::batch_wait`], once ≥ 2 requests are
//! parked), or the singleton fast-path (a tick ending with one parked
//! request flushes immediately, so an idle server keeps inline latency).
//! At flush, requests group by key id and each group executes under a
//! **single** generation-lock acquisition through the shared-context
//! batch path ([`dlr_core::driver::p2_handle_decrypt_batch`] over
//! `dlr_curve::BatchDecryptCtx`), then replies fan back to each
//! connection's encode stage. Per-request semantics — replies, error
//! isolation, generation checks, operation counters, metric spans — are
//! identical to the inline path by construction; only the shared
//! per-key work (exponent recoding, engine dispatch, lock traffic, loop
//! wakeups) is amortized. See DESIGN.md §5.
//!
//! ## Generation binding
//!
//! Sessions bind to a key **generation** at accept/hello time. Decrypt
//! and refresh requests re-check the binding under the key's generation
//! lock; a session whose key was refreshed since binding receives
//! [`ErrorCode::StaleGeneration`] instead of a garbage response computed
//! from mismatched shares. The session stays open — the client re-hellos
//! (with its refreshed `P1` share) and continues.

use crate::keyring::{persist_atomically, shard_of, KeyEntry, Keyring};
use bytes::Bytes;
use dlr_core::driver::{
    error_reply, error_reply_for, ok_reply, p2_handle_decrypt_batch, p2_handle_frame, ErrorCode,
    HelloMsg, RequestTag, TopologyMsg, GENERATION_ANY, WIRE_VERSION,
};
use dlr_curve::Pairing;
use dlr_metrics::Report;
use dlr_protocol::transport::{FrameReader, FrameWriter};
use dlr_protocol::WireStats;
use polling::{Event, Events, Poller};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Cluster ownership oracle consulted on a hello naming a key the local
/// keyring does not hold: return the owning replica's address (sent as a
/// [`ErrorCode::NotMine`] owner hint) or `None` if the key is unknown
/// fleet-wide (plain [`ErrorCode::UnknownKey`]). Set by the fleet
/// supervisor (`dlr-cluster`); standalone servers leave it unset.
#[derive(Clone)]
pub struct OwnerHint(pub Arc<OwnerHintFn>);

/// The closure type inside [`OwnerHint`]: key id → owning replica address.
pub type OwnerHintFn = dyn Fn(&[u8]) -> Option<String> + Send + Sync;

impl OwnerHint {
    /// The owner hint for `key_id`, if the fleet holds it elsewhere.
    pub fn lookup(&self, key_id: &[u8]) -> Option<String> {
        (self.0)(key_id)
    }
}

impl std::fmt::Debug for OwnerHint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OwnerHint(..)")
    }
}

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-session bound; further connections get a
    /// [`ErrorCode::Busy`] reply and are closed.
    pub max_sessions: usize,
    /// Per-session idle limit: a session receiving nothing for this long
    /// is closed (read-state deadline).
    pub read_timeout: Duration,
    /// Event-loop wakeup quantum: loops wake at least this often to check
    /// the shutdown flag and sweep per-connection deadlines.
    pub poll_interval: Duration,
    /// Write-state deadline: a peer that stops draining its reply for
    /// this long is disconnected.
    pub write_timeout: Duration,
    /// Deadline for flushing a [`ErrorCode::Busy`] reject reply; a
    /// rejected client that stalls past it is dropped without the
    /// courtesy reply (counted in `rejects_dropped`).
    pub reject_write_timeout: Duration,
    /// Worker event loops. `0` = auto (available parallelism, clamped to
    /// `1..=4`).
    pub workers: usize,
    /// Keyring shards (each owned by worker `shard % workers`). `0` =
    /// one per worker.
    pub shards: usize,
    /// Leakage-period length: the epoch scheduler fires every interval.
    /// `None` disables timed epochs ([`ServerHandle::force_epoch`] still
    /// works).
    pub epoch_interval: Option<Duration>,
    /// How often to dump aggregated stats JSON to [`Self::stats_path`].
    pub stats_interval: Option<Duration>,
    /// Where periodic + final stats dumps go (atomic temp+rename).
    pub stats_path: Option<PathBuf>,
    /// Fault injection (tests only): a request frame whose first byte
    /// matches panics the dispatcher, exercising the panic-recovery path
    /// without a special build.
    pub inject_panic_tag: Option<u8>,
    /// Fleet topology served on [`RequestTag::Topology`]. `None` (the
    /// standalone default) synthesizes a single-replica topology from the
    /// bound address at construction time, so the fetch always works.
    pub topology: Option<TopologyMsg>,
    /// Cluster ownership oracle for [`ErrorCode::NotMine`] replies on
    /// hello misses; `None` (standalone) answers `UnknownKey` as before.
    pub owner_hint: Option<OwnerHint>,
    /// Cross-request batch size cap (`--batch-max`): decrypt requests
    /// decoded while a worker's batch window is open execute together,
    /// flushing as soon as this many are parked. `1` (the default)
    /// disables batching — every request executes inline exactly as
    /// before; `0` removes the size cap (the window closes on the delay
    /// cap or the singleton fast-path only).
    pub batch_max: usize,
    /// Batch window delay cap (`--batch-wait-us`): once two or more
    /// requests are parked, the window stays open at most this long
    /// waiting for more before a timer flush. Zero flushes at the end of
    /// the readiness tick. A tick ending with a single parked request
    /// always flushes immediately (the singleton fast-path), so an idle
    /// server never trades latency for a batch that cannot form.
    pub batch_wait: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_sessions: 32,
            read_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(50),
            write_timeout: Duration::from_secs(10),
            reject_write_timeout: Duration::from_millis(300),
            workers: 0,
            shards: 0,
            epoch_interval: None,
            stats_interval: None,
            stats_path: None,
            inject_panic_tag: None,
            topology: None,
            owner_hint: None,
            batch_max: 1,
            batch_wait: Duration::ZERO,
        }
    }
}

impl ServerConfig {
    /// The worker count after resolving the `0` = auto default.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 4)
        }
    }

    /// The shard count after resolving the `0` = per-worker default.
    pub fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            self.resolved_workers()
        }
    }

    /// Whether the cross-request batch executor is active (`batch_max`
    /// anything but the inline default of 1).
    pub fn batching_enabled(&self) -> bool {
        self.batch_max != 1
    }

    /// The batch size cap with `0` resolved to "unbounded".
    pub fn batch_cap(&self) -> usize {
        if self.batch_max == 0 {
            usize::MAX
        } else {
            self.batch_max
        }
    }
}

/// Bound on retained per-round latency samples in the aggregate wire
/// stats — a long-lived server must not grow its sample buffer forever.
const MAX_LATENCY_SAMPLES: usize = 8192;

/// Per-shard service counters (sessions/requests attributed to the shard
/// a connection's bound key hashes to; epochs observed by the owning
/// worker loop).
#[derive(Debug, Default)]
struct ShardStats {
    sessions: AtomicU64,
    requests: AtomicU64,
    epochs: AtomicU64,
}

/// Monotonic service counters, updated lock-free by the workers.
#[derive(Debug, Default)]
pub struct ServerStats {
    sessions_accepted: AtomicU64,
    sessions_rejected_busy: AtomicU64,
    sessions_completed: AtomicU64,
    requests_hello: AtomicU64,
    requests_decrypt: AtomicU64,
    requests_refresh: AtomicU64,
    requests_topology: AtomicU64,
    not_mine_replies: AtomicU64,
    error_replies: AtomicU64,
    epochs: AtomicU64,
    refreshes: AtomicU64,
    persist_failures: AtomicU64,
    session_panics: AtomicU64,
    rejects_dropped: AtomicU64,
    migrations: AtomicU64,
    loop_wakeups: AtomicU64,
    batched_requests: AtomicU64,
    batch_flushes_full: AtomicU64,
    batch_flushes_timer: AtomicU64,
    batch_flushes_idle: AtomicU64,
    batch_size_hist: [AtomicU64; BATCH_HIST_BUCKETS],
    last_panic: parking_lot::Mutex<Option<String>>,
    shards: Vec<ShardStats>,
    wire: parking_lot::Mutex<WireStats>,
}

/// Batch-size histogram buckets: 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+.
const BATCH_HIST_BUCKETS: usize = 8;

/// Histogram bucket for a flush of `n` requests.
fn batch_hist_bucket(n: usize) -> usize {
    match n {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        17..=32 => 5,
        33..=64 => 6,
        _ => 7,
    }
}

impl ServerStats {
    fn with_shards(shards: usize) -> Self {
        Self {
            shards: (0..shards).map(|_| ShardStats::default()).collect(),
            ..Self::default()
        }
    }

    fn merge_wire(&self, session: &WireStats) {
        let mut agg = self.wire.lock();
        agg.merge(session);
        let len = agg.round_latency_ns.len();
        if len > MAX_LATENCY_SAMPLES {
            agg.round_latency_ns.drain(..len - MAX_LATENCY_SAMPLES);
        }
    }

    fn record_panic(&self, payload: &(dyn std::any::Any + Send)) {
        self.session_panics.fetch_add(1, Ordering::Relaxed);
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        *self.last_panic.lock() = Some(message);
    }

    /// Consistent point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions_accepted: self.sessions_accepted.load(Ordering::Relaxed),
            sessions_rejected_busy: self.sessions_rejected_busy.load(Ordering::Relaxed),
            sessions_completed: self.sessions_completed.load(Ordering::Relaxed),
            requests_hello: self.requests_hello.load(Ordering::Relaxed),
            requests_decrypt: self.requests_decrypt.load(Ordering::Relaxed),
            requests_refresh: self.requests_refresh.load(Ordering::Relaxed),
            requests_topology: self.requests_topology.load(Ordering::Relaxed),
            not_mine_replies: self.not_mine_replies.load(Ordering::Relaxed),
            error_replies: self.error_replies.load(Ordering::Relaxed),
            epochs: self.epochs.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            persist_failures: self.persist_failures.load(Ordering::Relaxed),
            session_panics: self.session_panics.load(Ordering::Relaxed),
            rejects_dropped: self.rejects_dropped.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            loop_wakeups: self.loop_wakeups.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            batch_flushes_full: self.batch_flushes_full.load(Ordering::Relaxed),
            batch_flushes_timer: self.batch_flushes_timer.load(Ordering::Relaxed),
            batch_flushes_idle: self.batch_flushes_idle.load(Ordering::Relaxed),
            batch_size_hist: self
                .batch_size_hist
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            last_panic: self.last_panic.lock().clone(),
            shards: self
                .shards
                .iter()
                .map(|s| ShardSnapshot {
                    sessions: s.sessions.load(Ordering::Relaxed),
                    requests: s.requests.load(Ordering::Relaxed),
                    epochs: s.epochs.load(Ordering::Relaxed),
                })
                .collect(),
            wire: self.wire.lock().clone(),
        }
    }
}

/// Plain-value copy of one shard's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Sessions whose bound key hashed to this shard.
    pub sessions: u64,
    /// Requests served against this shard's keys.
    pub requests: u64,
    /// Epoch boundaries observed by the owning worker loop.
    pub epochs: u64,
}

/// Plain-value copy of [`ServerStats`] plus the merged wire statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted into a session.
    pub sessions_accepted: u64,
    /// Connections refused with [`ErrorCode::Busy`].
    pub sessions_rejected_busy: u64,
    /// Sessions that ended (shutdown, disconnect, panic, or deadline).
    pub sessions_completed: u64,
    /// Hello requests served.
    pub requests_hello: u64,
    /// Decrypt requests served successfully.
    pub requests_decrypt: u64,
    /// Refresh requests served successfully.
    pub requests_refresh: u64,
    /// Topology fetches served.
    pub requests_topology: u64,
    /// [`ErrorCode::NotMine`] redirects sent (hello for a key another
    /// replica owns). Counted separately from `error_replies` — a
    /// redirect is routing information, not a service failure.
    pub not_mine_replies: u64,
    /// Structured error frames sent.
    pub error_replies: u64,
    /// Epoch boundaries marked by the scheduler.
    pub epochs: u64,
    /// Share refreshes committed (generation bumps).
    pub refreshes: u64,
    /// Refresh commits whose share persistence failed.
    pub persist_failures: u64,
    /// Request dispatches that panicked (session closed, slot reclaimed).
    pub session_panics: u64,
    /// Busy rejects dropped at the reject-write deadline because the
    /// client never drained the courtesy reply.
    pub rejects_dropped: u64,
    /// Connections migrated to their bound key's owner worker.
    pub migrations: u64,
    /// Readiness-loop wakeups across all worker event loops.
    pub loop_wakeups: u64,
    /// Decrypt requests served through the batch executor (parked in a
    /// worker batch window instead of executing inline). Every one of
    /// them is also counted in `requests_decrypt`/`error_replies` exactly
    /// as the inline path would.
    pub batched_requests: u64,
    /// Batch flushes triggered by the size cap (`--batch-max` reached).
    pub batch_flushes_full: u64,
    /// Batch flushes triggered by the delay cap (`--batch-wait-us`
    /// expired with ≥ 2 requests parked).
    pub batch_flushes_timer: u64,
    /// Batch flushes via the singleton fast-path (a readiness tick ended
    /// with exactly one parked request — flushed immediately so an idle
    /// server keeps inline latency).
    pub batch_flushes_idle: u64,
    /// Flush-size histogram, buckets 1, 2, 3–4, 5–8, 9–16, 17–32,
    /// 33–64, 65+.
    pub batch_size_hist: Vec<u64>,
    /// Message of the most recent dispatch panic, if any.
    pub last_panic: Option<String>,
    /// Per-shard counters, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
    /// Wire statistics merged across all completed sessions.
    pub wire: WireStats,
}

impl StatsSnapshot {
    /// Total batch flushes across all three window-close reasons.
    pub fn batch_flushes(&self) -> u64 {
        self.batch_flushes_full + self.batch_flushes_timer + self.batch_flushes_idle
    }

    /// Batch efficiency: requests per flush (the amortization factor the
    /// batching loadgen reports). `None` when no flush ever happened.
    pub fn batch_efficiency(&self) -> Option<f64> {
        let flushes = self.batch_flushes();
        (flushes > 0).then(|| self.batched_requests as f64 / flushes as f64)
    }

    /// Render as a `dlr-metrics` [`Report`]: counters as metadata, merged
    /// wire statistics as a wire row, plus any spans recorded in this
    /// process. Serializes to the standard report JSON/CSV schema.
    pub fn to_report(&self) -> Report {
        let join = |f: fn(&ShardSnapshot) -> u64| {
            self.shards
                .iter()
                .map(|s| f(s).to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut report = Report::capture()
            .with_meta("component", "dlr-server")
            .with_meta("sessions_accepted", &self.sessions_accepted.to_string())
            .with_meta(
                "sessions_rejected_busy",
                &self.sessions_rejected_busy.to_string(),
            )
            .with_meta("sessions_completed", &self.sessions_completed.to_string())
            .with_meta("requests_hello", &self.requests_hello.to_string())
            .with_meta("requests_decrypt", &self.requests_decrypt.to_string())
            .with_meta("requests_refresh", &self.requests_refresh.to_string())
            .with_meta("requests_topology", &self.requests_topology.to_string())
            .with_meta("not_mine_replies", &self.not_mine_replies.to_string())
            .with_meta("error_replies", &self.error_replies.to_string())
            .with_meta("epochs", &self.epochs.to_string())
            .with_meta("refreshes", &self.refreshes.to_string())
            .with_meta("persist_failures", &self.persist_failures.to_string())
            .with_meta("session_panics", &self.session_panics.to_string())
            .with_meta("rejects_dropped", &self.rejects_dropped.to_string())
            .with_meta("migrations", &self.migrations.to_string())
            .with_meta("loop_wakeups", &self.loop_wakeups.to_string())
            .with_meta("batched_requests", &self.batched_requests.to_string())
            .with_meta("batch_flushes_full", &self.batch_flushes_full.to_string())
            .with_meta("batch_flushes_timer", &self.batch_flushes_timer.to_string())
            .with_meta("batch_flushes_idle", &self.batch_flushes_idle.to_string())
            .with_meta(
                "batch_size_hist",
                &self
                    .batch_size_hist
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            )
            .with_meta(
                "batch_efficiency",
                &self
                    .batch_efficiency()
                    .map_or_else(|| "n/a".to_string(), |e| format!("{e:.2}")),
            )
            .with_meta("shards", &self.shards.len().to_string())
            .with_meta("shard_sessions", &join(|s| s.sessions))
            .with_meta("shard_requests", &join(|s| s.requests))
            .with_meta("shard_epochs", &join(|s| s.epochs));
        report.push_wire("server.sessions", self.wire.clone());
        report
    }
}

/// Invoked by the epoch scheduler at each period boundary with the new
/// epoch number.
pub type EpochHook = Box<dyn FnMut(u64) + Send>;

/// Lock a std mutex, recovering the guard if a previous holder panicked.
/// The protected values here (kick counters) are plain integers that are
/// never left mid-update, so the poisoned state is always consistent.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Cross-thread channel into one worker event loop: its poller (for
/// wakeups) and the count of epoch boundaries it has not yet observed.
struct WorkerLink {
    poller: Poller,
    pending_epochs: AtomicU64,
}

struct Shared {
    shutdown: AtomicBool,
    epoch: AtomicU64,
    active: AtomicUsize,
    /// Manual epoch kicks ([`ServerHandle::force_epoch`]); the scheduler
    /// compares against its own seen-count under [`Self::wake`].
    kick: Mutex<u64>,
    wake: Condvar,
    stats: ServerStats,
    local_addr: SocketAddr,
    workers: usize,
    shards: usize,
    links: Vec<WorkerLink>,
    accept_poller: Poller,
}

impl Shared {
    /// Wake every event loop (acceptor + workers).
    fn notify_all_loops(&self) {
        let _ = self.accept_poller.notify();
        for link in &self.links {
            let _ = link.poller.notify();
        }
    }
}

/// RAII ownership of one session slot: decrements `active` and counts the
/// session completed when dropped — on clean close, peer disconnect,
/// server shutdown, *and* dispatch panic alike, so a panicking session
/// can never leak its slot.
struct SlotGuard {
    shared: Arc<Shared>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
        self.shared
            .stats
            .sessions_completed
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful shutdown: stop accepting, drain the event loops,
    /// persist shares, exit [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        self.shared.notify_all_loops();
    }

    /// Trigger an epoch boundary now (asynchronous: the scheduler thread
    /// runs the hook; observe completion via [`Self::epoch`]).
    pub fn force_epoch(&self) {
        {
            let mut kicks = lock_recover(&self.shared.kick);
            *kicks += 1;
        }
        self.shared.wake.notify_all();
    }

    /// Epoch boundaries marked so far.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Sessions currently being served.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The listener's bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }
}

/// Concurrent key-share service over a [`Keyring`].
pub struct Server<E: Pairing> {
    listener: TcpListener,
    keyring: Arc<Keyring<E>>,
    config: ServerConfig,
    shared: Arc<Shared>,
    epoch_hook: Option<EpochHook>,
}

impl<E: Pairing> Server<E> {
    /// Bind a listener and construct the server around it.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        keyring: Arc<Keyring<E>>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Self::new(TcpListener::bind(addr)?, keyring, config)
    }

    /// Construct the server around an existing listener.
    pub fn new(
        listener: TcpListener,
        keyring: Arc<Keyring<E>>,
        mut config: ServerConfig,
    ) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        let workers = config.resolved_workers();
        let shards = config.resolved_shards();
        // Standalone servers are a fleet of one: synthesize the topology
        // from the bound address so a topology fetch always has an answer.
        if config.topology.is_none() {
            config.topology = Some(TopologyMsg {
                version: WIRE_VERSION,
                shards: shards as u32,
                replicas: vec![local_addr.to_string()],
            });
        }
        let links = (0..workers)
            .map(|_| {
                Ok(WorkerLink {
                    poller: Poller::new()?,
                    pending_epochs: AtomicU64::new(0),
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Self {
            listener,
            keyring,
            config,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                epoch: AtomicU64::new(0),
                active: AtomicUsize::new(0),
                kick: Mutex::new(0),
                wake: Condvar::new(),
                stats: ServerStats::with_shards(shards),
                local_addr,
                workers,
                shards,
                links,
                accept_poller: Poller::new()?,
            }),
            epoch_hook: None,
        })
    }

    /// Remote control valid for the lifetime of the process.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Register the epoch-boundary hook (called from the scheduler
    /// thread, outside any lock).
    pub fn set_epoch_hook(&mut self, hook: impl FnMut(u64) + Send + 'static) {
        self.epoch_hook = Some(Box::new(hook));
    }

    /// Serve until [`ServerHandle::shutdown`] (or a fatal accept error).
    ///
    /// Blocks the calling thread on the acceptor event loop. On exit
    /// every worker loop has drained its connections, all shares are
    /// persisted, and a final stats dump written (when configured);
    /// returns the final statistics.
    pub fn run(mut self) -> io::Result<StatsSnapshot> {
        self.listener.set_nonblocking(true)?;
        let shared = Arc::clone(&self.shared);
        let keyring = Arc::clone(&self.keyring);
        let config = self.config.clone();
        let mut hook = self.epoch_hook.take();

        // Shard → keys map so each worker can re-warm its own shards'
        // fixed-base tables after an epoch boundary.
        let mut shard_keys: Vec<Vec<Arc<KeyEntry<E>>>> = vec![Vec::new(); shared.shards];
        for entry in keyring.entries() {
            shard_keys[shard_of(entry.id(), shared.shards)].push(Arc::clone(entry));
        }
        let mesh = Mesh {
            inboxes: (0..shared.workers)
                .map(|_| parking_lot::Mutex::new(VecDeque::new()))
                .collect(),
        };

        let mut accept_err: Option<io::Error> = None;
        crossbeam::thread::scope(|s| {
            {
                let shared = Arc::clone(&shared);
                let interval = config.epoch_interval;
                let hook = &mut hook;
                s.spawn(move || epoch_scheduler(&shared, interval, hook));
            }
            if let (Some(interval), Some(path)) = (config.stats_interval, &config.stats_path) {
                let shared = Arc::clone(&shared);
                let path = path.clone();
                s.spawn(move || stats_dumper(&shared, interval, &path));
            }
            for index in 0..shared.workers {
                let mut worker = Worker {
                    index,
                    shared: &shared,
                    mesh: &mesh,
                    keyring: &keyring,
                    config: &config,
                    shard_keys: &shard_keys,
                    slab: Vec::new(),
                    free: Vec::new(),
                    batch: BatchQueue::default(),
                    next_conn_id: 0,
                };
                s.spawn(move || worker.run());
            }

            accept_err = acceptor_loop(&self.listener, &shared, &mesh, &config);

            // Wake everything so the scope can join: the scheduler/dumper
            // observe the flag under their own wakeups, the workers drain
            // their connections at the next loop iteration.
            shared.shutdown.store(true, Ordering::Release);
            shared.wake.notify_all();
            shared.notify_all_loops();
        });

        if let Some(e) = accept_err {
            return Err(e);
        }
        self.keyring.persist_all()?;
        let snapshot = shared.stats.snapshot();
        if let Some(path) = &config.stats_path {
            persist_atomically(path, snapshot.to_report().to_json().as_bytes())?;
        }
        Ok(snapshot)
    }
}

/// Accept connections until shutdown; returns the fatal accept error, if
/// any. At capacity a connection is staged as a nonblocking Busy reject
/// on a worker loop — the accept path itself never writes to a socket.
fn acceptor_loop<E: Pairing>(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    mesh: &Mesh<E>,
    config: &ServerConfig,
) -> Option<io::Error> {
    if let Err(e) = shared.accept_poller.add(listener, Event::readable(0)) {
        return Some(e);
    }
    let mut events = Events::new();
    let mut next_worker = 0usize;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        let _ = shared
            .accept_poller
            .wait(&mut events, Some(config.poll_interval));
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        loop {
            let stream = match listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Some(e),
            };
            let _ = stream.set_nonblocking(true);
            let _ = stream.set_nodelay(true);
            let inbound = if shared.active.load(Ordering::Acquire) >= config.max_sessions {
                shared
                    .stats
                    .sessions_rejected_busy
                    .fetch_add(1, Ordering::Relaxed);
                let mut writer = FrameWriter::new();
                let _ = writer.enqueue(&error_reply(
                    ErrorCode::Busy,
                    "server at session limit; retry after backoff",
                ));
                Inbound::Reject { stream, writer }
            } else {
                shared
                    .stats
                    .sessions_accepted
                    .fetch_add(1, Ordering::Relaxed);
                shared.active.fetch_add(1, Ordering::AcqRel);
                Inbound::Session {
                    stream,
                    guard: SlotGuard {
                        shared: Arc::clone(shared),
                    },
                }
            };
            mesh.inboxes[next_worker].lock().push_back(inbound);
            let _ = shared.links[next_worker].poller.notify();
            next_worker = (next_worker + 1) % shared.workers;
        }
    }
}

fn epoch_scheduler(shared: &Shared, interval: Option<Duration>, hook: &mut Option<EpochHook>) {
    let mut seen_kicks = 0u64;
    loop {
        let fired;
        {
            let mut kicks = lock_recover(&shared.kick);
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if *kicks > seen_kicks {
                seen_kicks = *kicks;
                fired = true;
            } else {
                let timed_out = match interval {
                    Some(d) => {
                        let (guard, result) = shared
                            .wake
                            .wait_timeout(kicks, d)
                            .unwrap_or_else(PoisonError::into_inner);
                        kicks = guard;
                        result.timed_out()
                    }
                    None => {
                        kicks = shared
                            .wake
                            .wait(kicks)
                            .unwrap_or_else(PoisonError::into_inner);
                        false
                    }
                };
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if *kicks > seen_kicks {
                    seen_kicks = *kicks;
                    fired = true;
                } else {
                    fired = timed_out;
                }
            }
        }
        if fired {
            let epoch = shared.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            shared.stats.epochs.fetch_add(1, Ordering::Relaxed);
            // Wake every worker loop through its poller so each re-warms
            // its own shards and stamps its shard epoch counters — the
            // old kick/condvar fan-out replaced by an eventfd per loop.
            for link in &shared.links {
                link.pending_epochs.fetch_add(1, Ordering::Release);
                let _ = link.poller.notify();
            }
            // The hook runs outside every lock: it may open sessions
            // against this very server (wire refresh via P1).
            if let Some(h) = hook.as_mut() {
                h(epoch);
            }
        }
    }
}

fn stats_dumper(shared: &Shared, interval: Duration, path: &std::path::Path) {
    let step = Duration::from_millis(50).min(interval);
    let mut since = Duration::ZERO;
    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(step);
        since += step;
        if since >= interval {
            since = Duration::ZERO;
            let _ =
                persist_atomically(path, shared.stats.snapshot().to_report().to_json().as_bytes());
        }
    }
}

/// A connection handed between event loops: a freshly accepted session, a
/// capacity reject carrying its preloaded Busy reply, or a live session
/// migrating to its bound key's owner worker.
enum Inbound<E: Pairing> {
    Session { stream: TcpStream, guard: SlotGuard },
    Reject { stream: TcpStream, writer: FrameWriter },
    Migrated(Box<Conn<E>>),
}

/// Worker-to-worker handoff queues (acceptor → worker, worker → worker on
/// migration). Separate from [`Shared`] so [`Shared`] stays non-generic.
struct Mesh<E: Pairing> {
    inboxes: Vec<parking_lot::Mutex<VecDeque<Inbound<E>>>>,
}

/// One nonblocking connection's frame state machine. The current state is
/// implicit: bytes pending in `writer` mean the write state, otherwise
/// the read state; `closing` marks the final flush before teardown.
struct Conn<E: Pairing> {
    stream: TcpStream,
    reader: FrameReader,
    writer: FrameWriter,
    session: Session<E>,
    /// `None` for capacity rejects (they never held a session slot).
    /// Never read — held so its `Drop` reclaims the slot when the
    /// connection is torn down, panics included.
    _guard: Option<SlotGuard>,
    wire: WireStats,
    /// Start of the in-flight request (set at frame receipt, consumed
    /// when its reply finishes flushing).
    req_started: Option<Instant>,
    /// Payload length of the staged reply, for wire accounting at flush.
    pending_reply: u64,
    /// Current per-state deadline (idle limit / write stall limit).
    deadline: Instant,
    /// Tear down once the writer drains.
    closing: bool,
    /// Interest currently registered with the poller.
    want_write: bool,
    /// Shard of the bound key, once a request has bound one.
    shard: Option<usize>,
    /// Whether this connection was already counted in shard sessions.
    shard_counted: bool,
    is_reject: bool,
    /// A decrypt request from this connection is parked in the worker's
    /// batch window; the connection reads nothing further (strict
    /// ping-pong) until the flush stages its reply.
    parked: bool,
    /// Worker-local identity token: a flush cross-checks it against the
    /// parked request so a slab slot freed and reused while the request
    /// waited can never receive a stranger's reply.
    conn_id: u64,
}

/// One request parked in a worker's batch window, addressed by slab slot
/// plus the connection identity token current at park time.
struct ParkedReq {
    slab_key: usize,
    conn_id: u64,
    req: Bytes,
}

/// Why a batch window closed.
#[derive(Clone, Copy)]
enum FlushReason {
    /// Size cap reached (`--batch-max`).
    Full,
    /// Delay cap expired with ≥ 2 requests parked (`--batch-wait-us`).
    Timer,
    /// Singleton fast-path: the readiness tick ended with one parked
    /// request and nothing to pair it with.
    Idle,
}

/// A worker's batch window: requests parked since the last flush plus the
/// instant the window opened (first park after an empty state).
#[derive(Default)]
struct BatchQueue {
    parked: Vec<ParkedReq>,
    opened: Option<Instant>,
}

impl BatchQueue {
    fn push(&mut self, req: ParkedReq) {
        if self.parked.is_empty() {
            self.opened = Some(Instant::now());
        }
        self.parked.push(req);
    }

    fn len(&self) -> usize {
        self.parked.len()
    }

    fn is_empty(&self) -> bool {
        self.parked.is_empty()
    }

    fn age(&self) -> Duration {
        self.opened.map_or(Duration::ZERO, |t| t.elapsed())
    }

    fn take(&mut self) -> Vec<ParkedReq> {
        self.opened = None;
        std::mem::take(&mut self.parked)
    }
}

enum Verdict {
    /// Connection stays on this loop; re-arm interest as needed.
    Keep,
    /// Tear the connection down.
    Close,
    /// Hand the connection to the worker owning its key's shard.
    Migrate(usize),
}

/// One worker event loop: a slab of connections driven by readiness
/// events from its poller, plus the epoch/inbox control channels.
struct Worker<'a, E: Pairing> {
    index: usize,
    shared: &'a Arc<Shared>,
    mesh: &'a Mesh<E>,
    keyring: &'a Keyring<E>,
    config: &'a ServerConfig,
    shard_keys: &'a [Vec<Arc<KeyEntry<E>>>],
    slab: Vec<Option<Conn<E>>>,
    free: Vec<usize>,
    /// Cross-request batch window (empty and never opened when
    /// [`ServerConfig::batching_enabled`] is off).
    batch: BatchQueue,
    /// Monotonic source for [`Conn::conn_id`] tokens.
    next_conn_id: u64,
}

impl<E: Pairing> Worker<'_, E> {
    fn link(&self) -> &WorkerLink {
        &self.shared.links[self.index]
    }

    fn run(&mut self) {
        let mut events = Events::new();
        let mut rng = rand::thread_rng();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let timeout = self.next_timeout();
            let _ = self.link().poller.wait(&mut events, Some(timeout));
            self.shared.stats.loop_wakeups.fetch_add(1, Ordering::Relaxed);
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            self.observe_epochs();
            self.drain_inbox(&mut rng);
            for ev in events.iter() {
                self.drive(ev.key, &mut rng);
                if self.batch.len() >= self.config.batch_cap() {
                    self.flush_batch(FlushReason::Full, &mut rng);
                }
            }
            self.close_batch_window(&mut rng);
            self.sweep_deadlines();
        }
        for key in 0..self.slab.len() {
            self.close(key);
        }
    }

    /// Sleep until the nearest connection deadline, capped at the poll
    /// quantum (wakeups for new work arrive via the poller's notify) and
    /// at the batch window's remaining delay budget when one is open.
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut timeout = self.config.poll_interval;
        for conn in self.slab.iter().flatten() {
            timeout = timeout.min(conn.deadline.saturating_duration_since(now));
        }
        if !self.batch.is_empty() {
            timeout = timeout.min(self.config.batch_wait.saturating_sub(self.batch.age()));
        }
        timeout
    }

    /// Apply epoch boundaries the scheduler has published since the last
    /// wakeup: stamp shard epoch counters and re-warm this worker's
    /// shards' fixed-base tables, all outside any generation lock.
    fn observe_epochs(&mut self) {
        let pending = self.link().pending_epochs.swap(0, Ordering::AcqRel);
        if pending == 0 {
            return;
        }
        let workers = self.shared.workers.max(1);
        let mut shard = self.index;
        while shard < self.shared.shards {
            self.shared.stats.shards[shard]
                .epochs
                .fetch_add(pending, Ordering::Relaxed);
            for entry in &self.shard_keys[shard] {
                entry.warm();
            }
            shard += workers;
        }
    }

    fn drain_inbox<R: rand::RngCore>(&mut self, rng: &mut R) {
        loop {
            let inbound = self.mesh.inboxes[self.index].lock().pop_front();
            let Some(inbound) = inbound else { return };
            if let Some(key) = self.adopt(inbound) {
                // Drive immediately: a fresh session may already have its
                // hello buffered, and a reject's Busy reply usually fits
                // the socket buffer in one write.
                self.drive(key, rng);
                if self.batch.len() >= self.config.batch_cap() {
                    self.flush_batch(FlushReason::Full, rng);
                }
            }
        }
    }

    /// Register an inbound connection in the slab and with the poller.
    fn adopt(&mut self, inbound: Inbound<E>) -> Option<usize> {
        let now = Instant::now();
        let conn = match inbound {
            Inbound::Session { stream, guard } => {
                let entry = self.keyring.default_entry();
                let bound_generation = entry.as_ref().map_or(0, |e| e.generation());
                Conn {
                    stream,
                    reader: FrameReader::new(),
                    writer: FrameWriter::new(),
                    session: Session {
                        entry,
                        bound_generation,
                    },
                    _guard: Some(guard),
                    wire: WireStats::default(),
                    req_started: None,
                    pending_reply: 0,
                    deadline: now + self.config.read_timeout,
                    closing: false,
                    want_write: false,
                    shard: None,
                    shard_counted: false,
                    is_reject: false,
                    parked: false,
                    conn_id: 0,
                }
            }
            Inbound::Reject { stream, writer } => Conn {
                stream,
                reader: FrameReader::new(),
                writer,
                session: Session {
                    entry: None,
                    bound_generation: 0,
                },
                _guard: None,
                wire: WireStats::default(),
                req_started: None,
                pending_reply: 0,
                deadline: now + self.config.reject_write_timeout,
                closing: true,
                want_write: true,
                shard: None,
                shard_counted: false,
                is_reject: true,
                parked: false,
                conn_id: 0,
            },
            Inbound::Migrated(conn) => {
                let mut conn = *conn;
                conn.deadline = now + self.config.read_timeout;
                conn.want_write = conn.writer.has_pending();
                conn
            }
        };
        let mut conn = conn;
        // A worker-unique token per adoption (migrated connections get a
        // fresh one too): parked requests name their connection by
        // (slot, token), so slot reuse can never cross replies.
        self.next_conn_id += 1;
        conn.conn_id = self.next_conn_id;
        conn.parked = false;
        let key = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.slab.len() - 1
        });
        let interest = if conn.want_write {
            Event::writable(key)
        } else {
            Event::readable(key)
        };
        match self.link().poller.add(&conn.stream, interest) {
            Ok(()) => {
                self.slab[key] = Some(conn);
                Some(key)
            }
            Err(_) => {
                // Registration failed (fd limit, dead socket): drop the
                // connection; the guard reclaims the slot.
                if !conn.is_reject {
                    self.shared.stats.merge_wire(&conn.wire);
                }
                self.free.push(key);
                None
            }
        }
    }

    /// Advance one connection's state machine as far as its socket
    /// allows, then apply the verdict (interest re-arm, close, migrate).
    fn drive<R: rand::RngCore>(&mut self, key: usize, rng: &mut R) {
        let verdict = {
            let Worker {
                slab,
                index,
                shared,
                keyring,
                config,
                batch,
                ..
            } = self;
            let Some(conn) = slab.get_mut(key).and_then(Option::as_mut) else {
                return;
            };
            drive_conn(conn, key, *index, shared, keyring, config, batch, rng)
        };
        match verdict {
            Verdict::Keep => {
                let Worker { slab, shared, index, .. } = self;
                let conn = slab[key].as_mut().expect("kept conn present");
                let want_write = conn.writer.has_pending();
                if want_write != conn.want_write {
                    let interest = if want_write {
                        Event::writable(key)
                    } else {
                        Event::readable(key)
                    };
                    match shared.links[*index].poller.modify(&conn.stream, interest) {
                        Ok(()) => conn.want_write = want_write,
                        Err(_) => self.close(key),
                    }
                }
            }
            Verdict::Close => self.close(key),
            Verdict::Migrate(home) => self.migrate(key, home),
        }
    }

    fn close(&mut self, key: usize) {
        let Some(conn) = self.slab[key].take() else {
            return;
        };
        let _ = self.link().poller.delete(&conn.stream);
        if !conn.is_reject {
            self.shared.stats.merge_wire(&conn.wire);
        }
        self.free.push(key);
        // `conn` (and its SlotGuard) drops here: slot + completion
        // accounting happen exactly once per session, panics included.
    }

    fn migrate(&mut self, key: usize, home: usize) {
        let Some(mut conn) = self.slab[key].take() else {
            return;
        };
        let _ = self.link().poller.delete(&conn.stream);
        self.free.push(key);
        conn.want_write = false;
        self.shared.stats.migrations.fetch_add(1, Ordering::Relaxed);
        self.mesh.inboxes[home].lock().push_back(Inbound::Migrated(Box::new(conn)));
        let _ = self.shared.links[home].poller.notify();
    }

    /// Close connections whose current-state deadline has passed: idle
    /// sessions, write-stalled peers, and reject clients that never
    /// drained their Busy reply.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        for key in 0..self.slab.len() {
            let expired = matches!(&self.slab[key], Some(c) if c.deadline <= now);
            if expired {
                if let Some(c) = &self.slab[key] {
                    if c.is_reject && c.writer.has_pending() {
                        self.shared
                            .stats
                            .rejects_dropped
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                self.close(key);
            }
        }
    }

    /// End-of-tick batch window policy (the adaptive part of the window):
    ///
    /// * size cap already flushed mid-tick ([`FlushReason::Full`]);
    /// * a lone parked request flushes **now** ([`FlushReason::Idle`]) —
    ///   the singleton fast-path: nothing arrived this tick to pair it
    ///   with, so holding it would trade latency for no amortization;
    /// * two or more parked requests are held until the delay cap
    ///   ([`ServerConfig::batch_wait`]) expires ([`FlushReason::Timer`]),
    ///   letting later ticks top the batch up to the size cap.
    ///
    /// Loops because staging replies can surface pipelined follow-up
    /// requests that park into a fresh window.
    fn close_batch_window<R: rand::RngCore>(&mut self, rng: &mut R) {
        loop {
            if self.batch.is_empty() {
                return;
            }
            if self.batch.len() >= self.config.batch_cap() {
                self.flush_batch(FlushReason::Full, rng);
            } else if self.batch.len() == 1 {
                self.flush_batch(FlushReason::Idle, rng);
            } else if self.batch.age() >= self.config.batch_wait {
                self.flush_batch(FlushReason::Timer, rng);
            } else {
                return; // window stays open; next_timeout caps the wait
            }
        }
    }

    /// Drain the batch window: group parked requests by key, execute each
    /// group through the shared-context batch path, and fan the replies
    /// back to their connections' encode stages.
    fn flush_batch<R: rand::RngCore>(&mut self, reason: FlushReason, rng: &mut R) {
        let parked = self.batch.take();
        if parked.is_empty() {
            return;
        }
        let stats = &self.shared.stats;
        match reason {
            FlushReason::Full => &stats.batch_flushes_full,
            FlushReason::Timer => &stats.batch_flushes_timer,
            FlushReason::Idle => &stats.batch_flushes_idle,
        }
        .fetch_add(1, Ordering::Relaxed);
        stats.batch_size_hist[batch_hist_bucket(parked.len())].fetch_add(1, Ordering::Relaxed);
        stats
            .batched_requests
            .fetch_add(parked.len() as u64, Ordering::Relaxed);

        // Group by key id (Arc identity), preserving arrival order within
        // each group. Requests whose connection vanished while parked
        // (deadline sweep, error close) are dropped — their reply has no
        // socket to go to and the token check keeps slot reuse safe.
        let mut groups: Vec<(Arc<KeyEntry<E>>, Vec<ParkedReq>)> = Vec::new();
        for preq in parked {
            let Some(conn) = self.slab.get(preq.slab_key).and_then(Option::as_ref) else {
                continue;
            };
            if conn.conn_id != preq.conn_id || !conn.parked {
                continue;
            }
            let Some(entry) = conn.session.entry.as_ref() else {
                continue; // park predicate requires a bound key
            };
            match groups.iter_mut().find(|(e, _)| Arc::ptr_eq(e, entry)) {
                Some((_, group)) => group.push(preq),
                None => groups.push((Arc::clone(entry), vec![preq])),
            }
        }
        for (entry, group) in groups {
            self.execute_group(&entry, group, rng);
        }
    }

    /// Execute one same-key group under a single generation-lock
    /// acquisition and panic guard, then stage + flush every reply. A
    /// panic anywhere in the group closes every connection in it — each
    /// SlotGuard reclaims its slot, exactly like the inline panic path.
    fn execute_group<R: rand::RngCore>(
        &mut self,
        entry: &Arc<KeyEntry<E>>,
        group: Vec<ParkedReq>,
        rng: &mut R,
    ) {
        let bounds: Vec<u64> = group
            .iter()
            .map(|p| {
                self.slab[p.slab_key]
                    .as_ref()
                    .expect("validated at grouping")
                    .session
                    .bound_generation
            })
            .collect();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            batch_dispatch(entry, &group, &bounds, &self.shared.stats, self.config)
        }));
        match outcome {
            Ok(replies) => {
                let shard = shard_of(entry.id(), self.shared.shards);
                for (preq, reply) in group.iter().zip(replies) {
                    let conn = self.slab[preq.slab_key]
                        .as_mut()
                        .expect("validated at grouping");
                    conn.parked = false;
                    conn.pending_reply = reply.len() as u64;
                    if conn.writer.enqueue(&reply).is_err() {
                        conn.closing = true;
                        continue;
                    }
                    conn.deadline = Instant::now() + self.config.write_timeout;
                    conn.shard = Some(shard);
                    if let Some(s) = self.shared.stats.shards.get(shard) {
                        s.requests.fetch_add(1, Ordering::Relaxed);
                        if !conn.shard_counted {
                            conn.shard_counted = true;
                            s.sessions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // Fan out: drive each connection's encode/write stage (and
                // any migration the freshly bound shard calls for).
                for preq in &group {
                    self.drive(preq.slab_key, rng);
                }
            }
            Err(payload) => {
                self.shared.stats.record_panic(payload.as_ref());
                for preq in &group {
                    let still_there = self
                        .slab
                        .get(preq.slab_key)
                        .and_then(Option::as_ref)
                        .is_some_and(|c| c.conn_id == preq.conn_id);
                    if still_there {
                        self.close(preq.slab_key);
                    }
                }
            }
        }
    }
}

/// Which worker should own `conn`, if not the current one.
fn migration_target<E: Pairing>(conn: &Conn<E>, shared: &Shared, index: usize) -> Option<usize> {
    if shared.workers <= 1 {
        return None;
    }
    let shard = conn.shard?;
    let home = shard % shared.workers;
    (home != index).then_some(home)
}

/// Run one connection's read/decode/execute/encode/write cycle until its
/// socket would block (or the connection reaches a terminal state).
///
/// With batching enabled, a decoded decrypt request on a key-bound
/// session does not execute inline: it parks in the worker's batch window
/// (`batch`) and the connection goes quiet until the flush stages its
/// reply — the execute stage moves from this per-connection FSM into
/// [`Worker::flush_batch`].
#[allow(clippy::too_many_arguments)]
fn drive_conn<E: Pairing, R: rand::RngCore>(
    conn: &mut Conn<E>,
    key: usize,
    index: usize,
    shared: &Shared,
    keyring: &Keyring<E>,
    config: &ServerConfig,
    batch: &mut BatchQueue,
    rng: &mut R,
) -> Verdict {
    if conn.is_reject {
        return drive_reject(conn);
    }
    if conn.parked {
        // Strict ping-pong: nothing to read or write until the batch
        // flush answers the parked request. Spurious readiness (e.g. a
        // disconnecting peer) resolves at flush time when the staged
        // reply fails to write.
        return Verdict::Keep;
    }
    loop {
        // Write state: flush the staged reply before reading again (the
        // protocols are strict request/response ping-pong).
        if conn.writer.has_pending() {
            match conn.writer.poll_flush(&mut conn.stream) {
                Ok(true) => {
                    finish_round(conn);
                    if conn.closing {
                        return Verdict::Close;
                    }
                    conn.deadline = Instant::now() + config.read_timeout;
                    if let Some(home) = migration_target(conn, shared, index) {
                        return Verdict::Migrate(home);
                    }
                }
                Ok(false) => return Verdict::Keep,
                Err(_) => return Verdict::Close,
            }
        }
        if conn.closing {
            return Verdict::Close;
        }
        // Read state: assemble the next request frame.
        match conn.reader.poll_frame(&mut conn.stream) {
            Ok(Some(req)) => {
                conn.deadline = Instant::now() + config.read_timeout;
                if config.batching_enabled()
                    && req.first() == Some(&(RequestTag::Decrypt as u8))
                    && conn.session.entry.is_some()
                {
                    // Park instead of executing inline. Wire receipt and
                    // the latency clock start now, exactly as the inline
                    // path would; the batch wait is part of the round.
                    conn.wire.frames_received += 1;
                    conn.wire.bytes_received += 4 + req.len() as u64;
                    conn.req_started = Some(Instant::now());
                    conn.parked = true;
                    batch.push(ParkedReq {
                        slab_key: key,
                        conn_id: conn.conn_id,
                        req,
                    });
                    return Verdict::Keep;
                }
                process_request(conn, &req, shared, keyring, config, rng);
                if !conn.writer.has_pending() && conn.closing {
                    return Verdict::Close;
                }
                // Loop: the write state above flushes the reply, then
                // reads the next (possibly pipelined) request.
            }
            Ok(None) => return Verdict::Keep,
            // Disconnect, oversized frame, or hard I/O failure all end
            // only this session.
            Err(_) => return Verdict::Close,
        }
    }
}

/// Drive a capacity-reject connection: flush the Busy reply, then linger
/// (write side shut, reads drained and discarded) until the peer closes
/// or the reject deadline sweeps it. Closing immediately after the flush
/// would race the peer's read — its unread request in our receive buffer
/// turns the close into an RST that can destroy the reply in flight.
fn drive_reject<E: Pairing>(conn: &mut Conn<E>) -> Verdict {
    if conn.writer.has_pending() {
        match conn.writer.poll_flush(&mut conn.stream) {
            Ok(true) => {
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
            }
            Ok(false) => return Verdict::Keep,
            Err(_) => return Verdict::Close,
        }
    }
    let mut scratch = [0u8; 1024];
    loop {
        match io::Read::read(&mut conn.stream, &mut scratch) {
            Ok(0) => return Verdict::Close,
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Verdict::Keep,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Close,
        }
    }
}

/// Account a fully flushed reply against the connection's wire stats.
fn finish_round<E: Pairing>(conn: &mut Conn<E>) {
    conn.wire.frames_sent += 1;
    conn.wire.bytes_sent += 4 + conn.pending_reply;
    if let Some(t0) = conn.req_started.take() {
        conn.wire.round_latency_ns.push(t0.elapsed().as_nanos() as u64);
    }
}

/// Decode/execute/encode one request frame: dispatch under a panic guard,
/// stage the reply, and attribute the request to its key's shard.
fn process_request<E: Pairing, R: rand::RngCore>(
    conn: &mut Conn<E>,
    req: &Bytes,
    shared: &Shared,
    keyring: &Keyring<E>,
    config: &ServerConfig,
    rng: &mut R,
) {
    conn.wire.frames_received += 1;
    conn.wire.bytes_received += 4 + req.len() as u64;
    conn.req_started = Some(Instant::now());

    let session = &mut conn.session;
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if let Some(tag) = config.inject_panic_tag {
            if req.first() == Some(&tag) {
                panic!("injected fault: request tag {tag:#x}");
            }
        }
        dispatch(req, session, keyring, &shared.stats, config, rng)
    }));
    match outcome {
        Err(payload) => {
            // The dispatcher panicked. The generation lock (parking_lot)
            // unlocked during unwind; close this session only — its
            // SlotGuard reclaims the slot on drop.
            shared.stats.record_panic(payload.as_ref());
            conn.closing = true;
        }
        Ok(None) => conn.closing = true, // session shutdown tag
        Ok(Some(reply)) => {
            conn.pending_reply = reply.len() as u64;
            if conn.writer.enqueue(&reply).is_err() {
                conn.closing = true;
                return;
            }
            conn.deadline = Instant::now() + config.write_timeout;
            if let Some(entry) = conn.session.entry.as_ref() {
                let shard = shard_of(entry.id(), shared.shards);
                conn.shard = Some(shard);
                if let Some(stats) = shared.stats.shards.get(shard) {
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    if !conn.shard_counted {
                        conn.shard_counted = true;
                        stats.sessions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

struct Session<E: Pairing> {
    entry: Option<Arc<KeyEntry<E>>>,
    bound_generation: u64,
}

/// Handle one request frame; `None` ends the session (shutdown tag).
fn dispatch<E: Pairing, R: rand::RngCore>(
    req: &[u8],
    session: &mut Session<E>,
    keyring: &Keyring<E>,
    stats: &ServerStats,
    config: &ServerConfig,
    rng: &mut R,
) -> Option<Bytes> {
    let err = |stats: &ServerStats, code, detail: &str| {
        stats.error_replies.fetch_add(1, Ordering::Relaxed);
        Some(error_reply(code, detail))
    };

    let Some(&tag_byte) = req.first() else {
        return err(stats, ErrorCode::BadRequest, "empty frame");
    };
    match RequestTag::from_u8(tag_byte) {
        None => err(stats, ErrorCode::UnknownTag, "unknown request tag"),
        Some(RequestTag::Shutdown) => None,
        Some(RequestTag::Topology) => {
            // Resolved to at least a singleton at construction time.
            let Some(topology) = config.topology.as_ref() else {
                return err(stats, ErrorCode::Internal, "no topology configured");
            };
            stats.requests_topology.fetch_add(1, Ordering::Relaxed);
            Some(ok_reply(&topology.to_bytes()))
        }
        Some(RequestTag::Hello) => {
            let hello = match HelloMsg::from_bytes(&req[1..]) {
                Ok(h) => h,
                Err(e) => {
                    stats.error_replies.fetch_add(1, Ordering::Relaxed);
                    return Some(error_reply_for(&e));
                }
            };
            let Some(entry) = keyring.get(&hello.key_id) else {
                // Not in the local ring — if the fleet oracle knows the
                // owner, redirect the client there instead of failing.
                if let Some(owner) = config
                    .owner_hint
                    .as_ref()
                    .and_then(|h| h.lookup(&hello.key_id))
                {
                    stats.not_mine_replies.fetch_add(1, Ordering::Relaxed);
                    return Some(error_reply(ErrorCode::NotMine, &owner));
                }
                return err(
                    stats,
                    ErrorCode::UnknownKey,
                    &format!("no key \"{}\"", String::from_utf8_lossy(&hello.key_id)),
                );
            };
            let generation = entry.generation();
            if hello.generation != GENERATION_ANY && hello.generation != generation {
                return err(
                    stats,
                    ErrorCode::StaleGeneration,
                    &format!("server holds generation {generation}"),
                );
            }
            session.entry = Some(entry);
            session.bound_generation = generation;
            stats.requests_hello.fetch_add(1, Ordering::Relaxed);
            let mut enc = Encoder::new();
            enc.put_u64(generation);
            Some(ok_reply(&enc.finish()))
        }
        Some(tag @ (RequestTag::Decrypt | RequestTag::Refresh)) => {
            let Some(entry) = session.entry.as_ref() else {
                return err(stats, ErrorCode::UnknownKey, "no key bound to session");
            };
            let bound = session.bound_generation;
            // The generation lock: binding check, protocol step, and (for
            // refresh) persistence + generation bump are one critical
            // section — a decrypt can never interleave with a
            // half-committed refresh.
            let (reply, rebind) = entry.with_state(|state| {
                if state.generation != bound {
                    stats.error_replies.fetch_add(1, Ordering::Relaxed);
                    let detail = format!(
                        "session bound to generation {bound}, key at {}",
                        state.generation
                    );
                    return (error_reply(ErrorCode::StaleGeneration, &detail), None);
                }
                match p2_handle_frame(&mut state.p2, state.generation, req, rng) {
                    Ok((_, Some(body))) => {
                        if tag == RequestTag::Refresh {
                            let (generation, persisted) = KeyEntry::commit_refresh(state);
                            if persisted.is_err() {
                                stats.persist_failures.fetch_add(1, Ordering::Relaxed);
                            }
                            stats.requests_refresh.fetch_add(1, Ordering::Relaxed);
                            stats.refreshes.fetch_add(1, Ordering::Relaxed);
                            (ok_reply(&body), Some(generation))
                        } else {
                            stats.requests_decrypt.fetch_add(1, Ordering::Relaxed);
                            (ok_reply(&body), None)
                        }
                    }
                    Ok((_, None)) => {
                        // unreachable for Decrypt/Refresh, but keep the
                        // wire sane if it ever happens
                        stats.error_replies.fetch_add(1, Ordering::Relaxed);
                        (error_reply(ErrorCode::Internal, "no reply produced"), None)
                    }
                    Err(e) => {
                        stats.error_replies.fetch_add(1, Ordering::Relaxed);
                        (error_reply_for(&e), None)
                    }
                }
            });
            if let Some(generation) = rebind {
                // Refresh committed. Re-warm the key's fixed-base tables
                // *after* the generation lock is released — idempotent when
                // already warm, and never serialized against other
                // sessions' decrypts.
                entry.warm();
                session.bound_generation = generation;
            }
            Some(reply)
        }
    }
}

/// Execute one same-key group of parked decrypt requests: a single
/// generation-lock acquisition covers the per-request binding checks and
/// the shared-context batch respond
/// ([`dlr_core::driver::p2_handle_decrypt_batch`]). Returns one reply per
/// request in group order.
///
/// Per-request semantics mirror [`dispatch`] exactly: a stale generation
/// binding earns [`ErrorCode::StaleGeneration`], a malformed body earns
/// its own parse error while siblings still get `ok` replies, and every
/// request bumps the same `requests_decrypt`/`error_replies` counters and
/// per-request `dec.p2.respond` span the inline path would.
fn batch_dispatch<E: Pairing>(
    entry: &KeyEntry<E>,
    group: &[ParkedReq],
    bounds: &[u64],
    stats: &ServerStats,
    config: &ServerConfig,
) -> Vec<Bytes> {
    // Fault injection mirrors the inline path: with batching on, a
    // decrypt-tagged inject panics here — inside batch execute — so the
    // recovery tests exercise the group teardown.
    if let Some(tag) = config.inject_panic_tag {
        if group.iter().any(|p| p.req.first() == Some(&tag)) {
            panic!("injected fault: request tag {tag:#x}");
        }
    }
    entry.with_state(|state| {
        let mut replies: Vec<Option<Bytes>> = (0..group.len()).map(|_| None).collect();
        let mut bodies: Vec<&[u8]> = Vec::with_capacity(group.len());
        let mut slots: Vec<usize> = Vec::with_capacity(group.len());
        for (i, (preq, bound)) in group.iter().zip(bounds).enumerate() {
            if state.generation != *bound {
                stats.error_replies.fetch_add(1, Ordering::Relaxed);
                let detail = format!(
                    "session bound to generation {bound}, key at {}",
                    state.generation
                );
                replies[i] = Some(error_reply(ErrorCode::StaleGeneration, &detail));
            } else {
                bodies.push(&preq.req[1..]);
                slots.push(i);
            }
        }
        for (slot, result) in slots
            .into_iter()
            .zip(p2_handle_decrypt_batch(&mut state.p2, &bodies))
        {
            replies[slot] = Some(match result {
                Ok(body) => {
                    stats.requests_decrypt.fetch_add(1, Ordering::Relaxed);
                    ok_reply(&body)
                }
                Err(e) => {
                    stats.error_replies.fetch_add(1, Ordering::Relaxed);
                    error_reply_for(&e)
                }
            });
        }
        replies
            .into_iter()
            .map(|r| r.expect("every grouped request answered"))
            .collect()
    })
}

use dlr_protocol::Encoder;

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_curve::Toy;

    /// Satellite regression: a waiter that panics while holding the kick
    /// mutex poisons it; `force_epoch` and the scheduler must recover
    /// instead of cascading the panic.
    #[test]
    fn scheduler_survives_poisoned_kick_lock() {
        let ring = Arc::new(Keyring::<Toy>::new());
        let server = Server::bind("127.0.0.1:0", ring, ServerConfig::default()).unwrap();
        let handle = server.handle();

        // Poison the kick mutex the way a panicking epoch coordinator
        // would: lock, then unwind.
        let poisoner = handle.clone();
        let t = std::thread::spawn(move || {
            let _guard = poisoner.shared.kick.lock().unwrap();
            panic!("poison the kick lock");
        });
        assert!(t.join().is_err());
        assert!(handle.shared.kick.is_poisoned());

        let runner = std::thread::spawn(move || server.run().unwrap());

        // force_epoch takes the poisoned lock; it must not panic, and the
        // scheduler (also locking it) must still fire the epoch.
        handle.force_epoch();
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.epoch() < 1 {
            assert!(
                Instant::now() < deadline,
                "scheduler never fired through the poisoned lock"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        handle.shutdown();
        let stats = runner.join().unwrap();
        assert_eq!(stats.epochs, 1);
    }

    #[test]
    fn config_resolution_defaults() {
        let config = ServerConfig::default();
        let workers = config.resolved_workers();
        assert!((1..=4).contains(&workers));
        assert_eq!(config.resolved_shards(), workers);
        let explicit = ServerConfig {
            workers: 3,
            shards: 7,
            ..ServerConfig::default()
        };
        assert_eq!(explicit.resolved_workers(), 3);
        assert_eq!(explicit.resolved_shards(), 7);
    }
}
