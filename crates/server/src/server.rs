//! The concurrent `P2` service: readiness event loops, sharded keyring
//! ownership, epoch scheduler, and aggregated statistics.
//!
//! ## Threading model
//!
//! [`Server::run`] blocks the calling thread on an **acceptor event
//! loop** (a vendored `polling` epoll/kqueue [`polling::Poller`] watching
//! the listener) and spawns a small fixed set of **worker event loops**
//! ([`ServerConfig::workers`]). Every accepted connection is made
//! nonblocking and handed to a worker, where a per-connection frame state
//! machine (read → decode/execute → encode → write, built from
//! [`dlr_protocol::transport::FrameReader`] /
//! [`dlr_protocol::transport::FrameWriter`]) drives it under per-state
//! deadlines: [`ServerConfig::read_timeout`] while waiting for a request,
//! [`ServerConfig::write_timeout`] while flushing a reply. No session
//! ever owns a thread, so thousands of concurrent connections cost a few
//! file descriptors each, not a stack.
//!
//! Connections arriving above [`ServerConfig::max_sessions`] are answered
//! with a structured [`ErrorCode::Busy`] reply — backpressure the
//! client's retry policy ([`dlr_core::driver::p1_decrypt_with_retry`])
//! understands. The reject is flushed **nonblockingly** on a worker loop
//! under the short [`ServerConfig::reject_write_timeout`]; a stalled or
//! adversarial rejected client is dropped at the deadline and can never
//! head-of-line-block the accept path.
//!
//! ## Keyring sharding
//!
//! Keys are sharded by id ([`crate::keyring::shard_of`], FNV-1a over the
//! key id modulo [`ServerConfig::shards`]) and each shard is owned by
//! worker `shard % workers`. After a connection's first served request
//! binds it to a key, the connection **migrates** to that key's owner
//! worker (its socket, buffered partial frames, and statistics travel
//! with it). Steady-state, every session touching a key runs on one
//! loop, so the per-key generation lock is only ever taken from a single
//! thread — a long refresh on shard A cannot stall decrypts on shard B,
//! because they execute on different workers with no shared lock.
//!
//! A background **epoch scheduler** thread marks leakage-period
//! boundaries (paper §4.4): every [`ServerConfig::epoch_interval`] (or on
//! [`ServerHandle::force_epoch`]) it bumps the epoch counter, wakes every
//! worker loop through its poller's eventfd/pipe (each worker re-warms
//! its own shards' fixed-base tables outside any lock and records the
//! boundary in its shard statistics), and invokes the registered epoch
//! hook. The hook is where deployment-specific refresh coordination
//! lives — refresh is a *two-party* protocol, so the scheduler cannot
//! rotate the share alone; the hook typically nudges the `P1` co-device,
//! which then drives a wire refresh through a normal session (the
//! integration tests do exactly this). The scheduler's kick mutex
//! recovers from poisoning: a panicking waiter cannot take the epoch
//! clock down with it.
//!
//! ## Generation binding
//!
//! Sessions bind to a key **generation** at accept/hello time. Decrypt
//! and refresh requests re-check the binding under the key's generation
//! lock; a session whose key was refreshed since binding receives
//! [`ErrorCode::StaleGeneration`] instead of a garbage response computed
//! from mismatched shares. The session stays open — the client re-hellos
//! (with its refreshed `P1` share) and continues.

use crate::keyring::{persist_atomically, shard_of, KeyEntry, Keyring};
use bytes::Bytes;
use dlr_core::driver::{
    error_reply, error_reply_for, ok_reply, p2_handle_frame, ErrorCode, HelloMsg, RequestTag,
    TopologyMsg, GENERATION_ANY, WIRE_VERSION,
};
use dlr_curve::Pairing;
use dlr_metrics::Report;
use dlr_protocol::transport::{FrameReader, FrameWriter};
use dlr_protocol::WireStats;
use polling::{Event, Events, Poller};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Cluster ownership oracle consulted on a hello naming a key the local
/// keyring does not hold: return the owning replica's address (sent as a
/// [`ErrorCode::NotMine`] owner hint) or `None` if the key is unknown
/// fleet-wide (plain [`ErrorCode::UnknownKey`]). Set by the fleet
/// supervisor (`dlr-cluster`); standalone servers leave it unset.
#[derive(Clone)]
pub struct OwnerHint(pub Arc<OwnerHintFn>);

/// The closure type inside [`OwnerHint`]: key id → owning replica address.
pub type OwnerHintFn = dyn Fn(&[u8]) -> Option<String> + Send + Sync;

impl OwnerHint {
    /// The owner hint for `key_id`, if the fleet holds it elsewhere.
    pub fn lookup(&self, key_id: &[u8]) -> Option<String> {
        (self.0)(key_id)
    }
}

impl std::fmt::Debug for OwnerHint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OwnerHint(..)")
    }
}

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-session bound; further connections get a
    /// [`ErrorCode::Busy`] reply and are closed.
    pub max_sessions: usize,
    /// Per-session idle limit: a session receiving nothing for this long
    /// is closed (read-state deadline).
    pub read_timeout: Duration,
    /// Event-loop wakeup quantum: loops wake at least this often to check
    /// the shutdown flag and sweep per-connection deadlines.
    pub poll_interval: Duration,
    /// Write-state deadline: a peer that stops draining its reply for
    /// this long is disconnected.
    pub write_timeout: Duration,
    /// Deadline for flushing a [`ErrorCode::Busy`] reject reply; a
    /// rejected client that stalls past it is dropped without the
    /// courtesy reply (counted in `rejects_dropped`).
    pub reject_write_timeout: Duration,
    /// Worker event loops. `0` = auto (available parallelism, clamped to
    /// `1..=4`).
    pub workers: usize,
    /// Keyring shards (each owned by worker `shard % workers`). `0` =
    /// one per worker.
    pub shards: usize,
    /// Leakage-period length: the epoch scheduler fires every interval.
    /// `None` disables timed epochs ([`ServerHandle::force_epoch`] still
    /// works).
    pub epoch_interval: Option<Duration>,
    /// How often to dump aggregated stats JSON to [`Self::stats_path`].
    pub stats_interval: Option<Duration>,
    /// Where periodic + final stats dumps go (atomic temp+rename).
    pub stats_path: Option<PathBuf>,
    /// Fault injection (tests only): a request frame whose first byte
    /// matches panics the dispatcher, exercising the panic-recovery path
    /// without a special build.
    pub inject_panic_tag: Option<u8>,
    /// Fleet topology served on [`RequestTag::Topology`]. `None` (the
    /// standalone default) synthesizes a single-replica topology from the
    /// bound address at construction time, so the fetch always works.
    pub topology: Option<TopologyMsg>,
    /// Cluster ownership oracle for [`ErrorCode::NotMine`] replies on
    /// hello misses; `None` (standalone) answers `UnknownKey` as before.
    pub owner_hint: Option<OwnerHint>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_sessions: 32,
            read_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(50),
            write_timeout: Duration::from_secs(10),
            reject_write_timeout: Duration::from_millis(300),
            workers: 0,
            shards: 0,
            epoch_interval: None,
            stats_interval: None,
            stats_path: None,
            inject_panic_tag: None,
            topology: None,
            owner_hint: None,
        }
    }
}

impl ServerConfig {
    /// The worker count after resolving the `0` = auto default.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 4)
        }
    }

    /// The shard count after resolving the `0` = per-worker default.
    pub fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            self.resolved_workers()
        }
    }
}

/// Bound on retained per-round latency samples in the aggregate wire
/// stats — a long-lived server must not grow its sample buffer forever.
const MAX_LATENCY_SAMPLES: usize = 8192;

/// Per-shard service counters (sessions/requests attributed to the shard
/// a connection's bound key hashes to; epochs observed by the owning
/// worker loop).
#[derive(Debug, Default)]
struct ShardStats {
    sessions: AtomicU64,
    requests: AtomicU64,
    epochs: AtomicU64,
}

/// Monotonic service counters, updated lock-free by the workers.
#[derive(Debug, Default)]
pub struct ServerStats {
    sessions_accepted: AtomicU64,
    sessions_rejected_busy: AtomicU64,
    sessions_completed: AtomicU64,
    requests_hello: AtomicU64,
    requests_decrypt: AtomicU64,
    requests_refresh: AtomicU64,
    requests_topology: AtomicU64,
    not_mine_replies: AtomicU64,
    error_replies: AtomicU64,
    epochs: AtomicU64,
    refreshes: AtomicU64,
    persist_failures: AtomicU64,
    session_panics: AtomicU64,
    rejects_dropped: AtomicU64,
    migrations: AtomicU64,
    loop_wakeups: AtomicU64,
    last_panic: parking_lot::Mutex<Option<String>>,
    shards: Vec<ShardStats>,
    wire: parking_lot::Mutex<WireStats>,
}

impl ServerStats {
    fn with_shards(shards: usize) -> Self {
        Self {
            shards: (0..shards).map(|_| ShardStats::default()).collect(),
            ..Self::default()
        }
    }

    fn merge_wire(&self, session: &WireStats) {
        let mut agg = self.wire.lock();
        agg.merge(session);
        let len = agg.round_latency_ns.len();
        if len > MAX_LATENCY_SAMPLES {
            agg.round_latency_ns.drain(..len - MAX_LATENCY_SAMPLES);
        }
    }

    fn record_panic(&self, payload: &(dyn std::any::Any + Send)) {
        self.session_panics.fetch_add(1, Ordering::Relaxed);
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        *self.last_panic.lock() = Some(message);
    }

    /// Consistent point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions_accepted: self.sessions_accepted.load(Ordering::Relaxed),
            sessions_rejected_busy: self.sessions_rejected_busy.load(Ordering::Relaxed),
            sessions_completed: self.sessions_completed.load(Ordering::Relaxed),
            requests_hello: self.requests_hello.load(Ordering::Relaxed),
            requests_decrypt: self.requests_decrypt.load(Ordering::Relaxed),
            requests_refresh: self.requests_refresh.load(Ordering::Relaxed),
            requests_topology: self.requests_topology.load(Ordering::Relaxed),
            not_mine_replies: self.not_mine_replies.load(Ordering::Relaxed),
            error_replies: self.error_replies.load(Ordering::Relaxed),
            epochs: self.epochs.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            persist_failures: self.persist_failures.load(Ordering::Relaxed),
            session_panics: self.session_panics.load(Ordering::Relaxed),
            rejects_dropped: self.rejects_dropped.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            loop_wakeups: self.loop_wakeups.load(Ordering::Relaxed),
            last_panic: self.last_panic.lock().clone(),
            shards: self
                .shards
                .iter()
                .map(|s| ShardSnapshot {
                    sessions: s.sessions.load(Ordering::Relaxed),
                    requests: s.requests.load(Ordering::Relaxed),
                    epochs: s.epochs.load(Ordering::Relaxed),
                })
                .collect(),
            wire: self.wire.lock().clone(),
        }
    }
}

/// Plain-value copy of one shard's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Sessions whose bound key hashed to this shard.
    pub sessions: u64,
    /// Requests served against this shard's keys.
    pub requests: u64,
    /// Epoch boundaries observed by the owning worker loop.
    pub epochs: u64,
}

/// Plain-value copy of [`ServerStats`] plus the merged wire statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted into a session.
    pub sessions_accepted: u64,
    /// Connections refused with [`ErrorCode::Busy`].
    pub sessions_rejected_busy: u64,
    /// Sessions that ended (shutdown, disconnect, panic, or deadline).
    pub sessions_completed: u64,
    /// Hello requests served.
    pub requests_hello: u64,
    /// Decrypt requests served successfully.
    pub requests_decrypt: u64,
    /// Refresh requests served successfully.
    pub requests_refresh: u64,
    /// Topology fetches served.
    pub requests_topology: u64,
    /// [`ErrorCode::NotMine`] redirects sent (hello for a key another
    /// replica owns). Counted separately from `error_replies` — a
    /// redirect is routing information, not a service failure.
    pub not_mine_replies: u64,
    /// Structured error frames sent.
    pub error_replies: u64,
    /// Epoch boundaries marked by the scheduler.
    pub epochs: u64,
    /// Share refreshes committed (generation bumps).
    pub refreshes: u64,
    /// Refresh commits whose share persistence failed.
    pub persist_failures: u64,
    /// Request dispatches that panicked (session closed, slot reclaimed).
    pub session_panics: u64,
    /// Busy rejects dropped at the reject-write deadline because the
    /// client never drained the courtesy reply.
    pub rejects_dropped: u64,
    /// Connections migrated to their bound key's owner worker.
    pub migrations: u64,
    /// Readiness-loop wakeups across all worker event loops.
    pub loop_wakeups: u64,
    /// Message of the most recent dispatch panic, if any.
    pub last_panic: Option<String>,
    /// Per-shard counters, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
    /// Wire statistics merged across all completed sessions.
    pub wire: WireStats,
}

impl StatsSnapshot {
    /// Render as a `dlr-metrics` [`Report`]: counters as metadata, merged
    /// wire statistics as a wire row, plus any spans recorded in this
    /// process. Serializes to the standard report JSON/CSV schema.
    pub fn to_report(&self) -> Report {
        let join = |f: fn(&ShardSnapshot) -> u64| {
            self.shards
                .iter()
                .map(|s| f(s).to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut report = Report::capture()
            .with_meta("component", "dlr-server")
            .with_meta("sessions_accepted", &self.sessions_accepted.to_string())
            .with_meta(
                "sessions_rejected_busy",
                &self.sessions_rejected_busy.to_string(),
            )
            .with_meta("sessions_completed", &self.sessions_completed.to_string())
            .with_meta("requests_hello", &self.requests_hello.to_string())
            .with_meta("requests_decrypt", &self.requests_decrypt.to_string())
            .with_meta("requests_refresh", &self.requests_refresh.to_string())
            .with_meta("requests_topology", &self.requests_topology.to_string())
            .with_meta("not_mine_replies", &self.not_mine_replies.to_string())
            .with_meta("error_replies", &self.error_replies.to_string())
            .with_meta("epochs", &self.epochs.to_string())
            .with_meta("refreshes", &self.refreshes.to_string())
            .with_meta("persist_failures", &self.persist_failures.to_string())
            .with_meta("session_panics", &self.session_panics.to_string())
            .with_meta("rejects_dropped", &self.rejects_dropped.to_string())
            .with_meta("migrations", &self.migrations.to_string())
            .with_meta("loop_wakeups", &self.loop_wakeups.to_string())
            .with_meta("shards", &self.shards.len().to_string())
            .with_meta("shard_sessions", &join(|s| s.sessions))
            .with_meta("shard_requests", &join(|s| s.requests))
            .with_meta("shard_epochs", &join(|s| s.epochs));
        report.push_wire("server.sessions", self.wire.clone());
        report
    }
}

/// Invoked by the epoch scheduler at each period boundary with the new
/// epoch number.
pub type EpochHook = Box<dyn FnMut(u64) + Send>;

/// Lock a std mutex, recovering the guard if a previous holder panicked.
/// The protected values here (kick counters) are plain integers that are
/// never left mid-update, so the poisoned state is always consistent.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Cross-thread channel into one worker event loop: its poller (for
/// wakeups) and the count of epoch boundaries it has not yet observed.
struct WorkerLink {
    poller: Poller,
    pending_epochs: AtomicU64,
}

struct Shared {
    shutdown: AtomicBool,
    epoch: AtomicU64,
    active: AtomicUsize,
    /// Manual epoch kicks ([`ServerHandle::force_epoch`]); the scheduler
    /// compares against its own seen-count under [`Self::wake`].
    kick: Mutex<u64>,
    wake: Condvar,
    stats: ServerStats,
    local_addr: SocketAddr,
    workers: usize,
    shards: usize,
    links: Vec<WorkerLink>,
    accept_poller: Poller,
}

impl Shared {
    /// Wake every event loop (acceptor + workers).
    fn notify_all_loops(&self) {
        let _ = self.accept_poller.notify();
        for link in &self.links {
            let _ = link.poller.notify();
        }
    }
}

/// RAII ownership of one session slot: decrements `active` and counts the
/// session completed when dropped — on clean close, peer disconnect,
/// server shutdown, *and* dispatch panic alike, so a panicking session
/// can never leak its slot.
struct SlotGuard {
    shared: Arc<Shared>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
        self.shared
            .stats
            .sessions_completed
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful shutdown: stop accepting, drain the event loops,
    /// persist shares, exit [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        self.shared.notify_all_loops();
    }

    /// Trigger an epoch boundary now (asynchronous: the scheduler thread
    /// runs the hook; observe completion via [`Self::epoch`]).
    pub fn force_epoch(&self) {
        {
            let mut kicks = lock_recover(&self.shared.kick);
            *kicks += 1;
        }
        self.shared.wake.notify_all();
    }

    /// Epoch boundaries marked so far.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Sessions currently being served.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The listener's bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }
}

/// Concurrent key-share service over a [`Keyring`].
pub struct Server<E: Pairing> {
    listener: TcpListener,
    keyring: Arc<Keyring<E>>,
    config: ServerConfig,
    shared: Arc<Shared>,
    epoch_hook: Option<EpochHook>,
}

impl<E: Pairing> Server<E> {
    /// Bind a listener and construct the server around it.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        keyring: Arc<Keyring<E>>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Self::new(TcpListener::bind(addr)?, keyring, config)
    }

    /// Construct the server around an existing listener.
    pub fn new(
        listener: TcpListener,
        keyring: Arc<Keyring<E>>,
        mut config: ServerConfig,
    ) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        let workers = config.resolved_workers();
        let shards = config.resolved_shards();
        // Standalone servers are a fleet of one: synthesize the topology
        // from the bound address so a topology fetch always has an answer.
        if config.topology.is_none() {
            config.topology = Some(TopologyMsg {
                version: WIRE_VERSION,
                shards: shards as u32,
                replicas: vec![local_addr.to_string()],
            });
        }
        let links = (0..workers)
            .map(|_| {
                Ok(WorkerLink {
                    poller: Poller::new()?,
                    pending_epochs: AtomicU64::new(0),
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Self {
            listener,
            keyring,
            config,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                epoch: AtomicU64::new(0),
                active: AtomicUsize::new(0),
                kick: Mutex::new(0),
                wake: Condvar::new(),
                stats: ServerStats::with_shards(shards),
                local_addr,
                workers,
                shards,
                links,
                accept_poller: Poller::new()?,
            }),
            epoch_hook: None,
        })
    }

    /// Remote control valid for the lifetime of the process.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Register the epoch-boundary hook (called from the scheduler
    /// thread, outside any lock).
    pub fn set_epoch_hook(&mut self, hook: impl FnMut(u64) + Send + 'static) {
        self.epoch_hook = Some(Box::new(hook));
    }

    /// Serve until [`ServerHandle::shutdown`] (or a fatal accept error).
    ///
    /// Blocks the calling thread on the acceptor event loop. On exit
    /// every worker loop has drained its connections, all shares are
    /// persisted, and a final stats dump written (when configured);
    /// returns the final statistics.
    pub fn run(mut self) -> io::Result<StatsSnapshot> {
        self.listener.set_nonblocking(true)?;
        let shared = Arc::clone(&self.shared);
        let keyring = Arc::clone(&self.keyring);
        let config = self.config.clone();
        let mut hook = self.epoch_hook.take();

        // Shard → keys map so each worker can re-warm its own shards'
        // fixed-base tables after an epoch boundary.
        let mut shard_keys: Vec<Vec<Arc<KeyEntry<E>>>> = vec![Vec::new(); shared.shards];
        for entry in keyring.entries() {
            shard_keys[shard_of(entry.id(), shared.shards)].push(Arc::clone(entry));
        }
        let mesh = Mesh {
            inboxes: (0..shared.workers)
                .map(|_| parking_lot::Mutex::new(VecDeque::new()))
                .collect(),
        };

        let mut accept_err: Option<io::Error> = None;
        crossbeam::thread::scope(|s| {
            {
                let shared = Arc::clone(&shared);
                let interval = config.epoch_interval;
                let hook = &mut hook;
                s.spawn(move || epoch_scheduler(&shared, interval, hook));
            }
            if let (Some(interval), Some(path)) = (config.stats_interval, &config.stats_path) {
                let shared = Arc::clone(&shared);
                let path = path.clone();
                s.spawn(move || stats_dumper(&shared, interval, &path));
            }
            for index in 0..shared.workers {
                let mut worker = Worker {
                    index,
                    shared: &shared,
                    mesh: &mesh,
                    keyring: &keyring,
                    config: &config,
                    shard_keys: &shard_keys,
                    slab: Vec::new(),
                    free: Vec::new(),
                };
                s.spawn(move || worker.run());
            }

            accept_err = acceptor_loop(&self.listener, &shared, &mesh, &config);

            // Wake everything so the scope can join: the scheduler/dumper
            // observe the flag under their own wakeups, the workers drain
            // their connections at the next loop iteration.
            shared.shutdown.store(true, Ordering::Release);
            shared.wake.notify_all();
            shared.notify_all_loops();
        });

        if let Some(e) = accept_err {
            return Err(e);
        }
        self.keyring.persist_all()?;
        let snapshot = shared.stats.snapshot();
        if let Some(path) = &config.stats_path {
            persist_atomically(path, snapshot.to_report().to_json().as_bytes())?;
        }
        Ok(snapshot)
    }
}

/// Accept connections until shutdown; returns the fatal accept error, if
/// any. At capacity a connection is staged as a nonblocking Busy reject
/// on a worker loop — the accept path itself never writes to a socket.
fn acceptor_loop<E: Pairing>(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    mesh: &Mesh<E>,
    config: &ServerConfig,
) -> Option<io::Error> {
    if let Err(e) = shared.accept_poller.add(listener, Event::readable(0)) {
        return Some(e);
    }
    let mut events = Events::new();
    let mut next_worker = 0usize;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        let _ = shared
            .accept_poller
            .wait(&mut events, Some(config.poll_interval));
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        loop {
            let stream = match listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Some(e),
            };
            let _ = stream.set_nonblocking(true);
            let _ = stream.set_nodelay(true);
            let inbound = if shared.active.load(Ordering::Acquire) >= config.max_sessions {
                shared
                    .stats
                    .sessions_rejected_busy
                    .fetch_add(1, Ordering::Relaxed);
                let mut writer = FrameWriter::new();
                let _ = writer.enqueue(&error_reply(
                    ErrorCode::Busy,
                    "server at session limit; retry after backoff",
                ));
                Inbound::Reject { stream, writer }
            } else {
                shared
                    .stats
                    .sessions_accepted
                    .fetch_add(1, Ordering::Relaxed);
                shared.active.fetch_add(1, Ordering::AcqRel);
                Inbound::Session {
                    stream,
                    guard: SlotGuard {
                        shared: Arc::clone(shared),
                    },
                }
            };
            mesh.inboxes[next_worker].lock().push_back(inbound);
            let _ = shared.links[next_worker].poller.notify();
            next_worker = (next_worker + 1) % shared.workers;
        }
    }
}

fn epoch_scheduler(shared: &Shared, interval: Option<Duration>, hook: &mut Option<EpochHook>) {
    let mut seen_kicks = 0u64;
    loop {
        let fired;
        {
            let mut kicks = lock_recover(&shared.kick);
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if *kicks > seen_kicks {
                seen_kicks = *kicks;
                fired = true;
            } else {
                let timed_out = match interval {
                    Some(d) => {
                        let (guard, result) = shared
                            .wake
                            .wait_timeout(kicks, d)
                            .unwrap_or_else(PoisonError::into_inner);
                        kicks = guard;
                        result.timed_out()
                    }
                    None => {
                        kicks = shared
                            .wake
                            .wait(kicks)
                            .unwrap_or_else(PoisonError::into_inner);
                        false
                    }
                };
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if *kicks > seen_kicks {
                    seen_kicks = *kicks;
                    fired = true;
                } else {
                    fired = timed_out;
                }
            }
        }
        if fired {
            let epoch = shared.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            shared.stats.epochs.fetch_add(1, Ordering::Relaxed);
            // Wake every worker loop through its poller so each re-warms
            // its own shards and stamps its shard epoch counters — the
            // old kick/condvar fan-out replaced by an eventfd per loop.
            for link in &shared.links {
                link.pending_epochs.fetch_add(1, Ordering::Release);
                let _ = link.poller.notify();
            }
            // The hook runs outside every lock: it may open sessions
            // against this very server (wire refresh via P1).
            if let Some(h) = hook.as_mut() {
                h(epoch);
            }
        }
    }
}

fn stats_dumper(shared: &Shared, interval: Duration, path: &std::path::Path) {
    let step = Duration::from_millis(50).min(interval);
    let mut since = Duration::ZERO;
    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(step);
        since += step;
        if since >= interval {
            since = Duration::ZERO;
            let _ =
                persist_atomically(path, shared.stats.snapshot().to_report().to_json().as_bytes());
        }
    }
}

/// A connection handed between event loops: a freshly accepted session, a
/// capacity reject carrying its preloaded Busy reply, or a live session
/// migrating to its bound key's owner worker.
enum Inbound<E: Pairing> {
    Session { stream: TcpStream, guard: SlotGuard },
    Reject { stream: TcpStream, writer: FrameWriter },
    Migrated(Box<Conn<E>>),
}

/// Worker-to-worker handoff queues (acceptor → worker, worker → worker on
/// migration). Separate from [`Shared`] so [`Shared`] stays non-generic.
struct Mesh<E: Pairing> {
    inboxes: Vec<parking_lot::Mutex<VecDeque<Inbound<E>>>>,
}

/// One nonblocking connection's frame state machine. The current state is
/// implicit: bytes pending in `writer` mean the write state, otherwise
/// the read state; `closing` marks the final flush before teardown.
struct Conn<E: Pairing> {
    stream: TcpStream,
    reader: FrameReader,
    writer: FrameWriter,
    session: Session<E>,
    /// `None` for capacity rejects (they never held a session slot).
    /// Never read — held so its `Drop` reclaims the slot when the
    /// connection is torn down, panics included.
    _guard: Option<SlotGuard>,
    wire: WireStats,
    /// Start of the in-flight request (set at frame receipt, consumed
    /// when its reply finishes flushing).
    req_started: Option<Instant>,
    /// Payload length of the staged reply, for wire accounting at flush.
    pending_reply: u64,
    /// Current per-state deadline (idle limit / write stall limit).
    deadline: Instant,
    /// Tear down once the writer drains.
    closing: bool,
    /// Interest currently registered with the poller.
    want_write: bool,
    /// Shard of the bound key, once a request has bound one.
    shard: Option<usize>,
    /// Whether this connection was already counted in shard sessions.
    shard_counted: bool,
    is_reject: bool,
}

enum Verdict {
    /// Connection stays on this loop; re-arm interest as needed.
    Keep,
    /// Tear the connection down.
    Close,
    /// Hand the connection to the worker owning its key's shard.
    Migrate(usize),
}

/// One worker event loop: a slab of connections driven by readiness
/// events from its poller, plus the epoch/inbox control channels.
struct Worker<'a, E: Pairing> {
    index: usize,
    shared: &'a Arc<Shared>,
    mesh: &'a Mesh<E>,
    keyring: &'a Keyring<E>,
    config: &'a ServerConfig,
    shard_keys: &'a [Vec<Arc<KeyEntry<E>>>],
    slab: Vec<Option<Conn<E>>>,
    free: Vec<usize>,
}

impl<E: Pairing> Worker<'_, E> {
    fn link(&self) -> &WorkerLink {
        &self.shared.links[self.index]
    }

    fn run(&mut self) {
        let mut events = Events::new();
        let mut rng = rand::thread_rng();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let timeout = self.next_timeout();
            let _ = self.link().poller.wait(&mut events, Some(timeout));
            self.shared.stats.loop_wakeups.fetch_add(1, Ordering::Relaxed);
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            self.observe_epochs();
            self.drain_inbox(&mut rng);
            for ev in events.iter() {
                self.drive(ev.key, &mut rng);
            }
            self.sweep_deadlines();
        }
        for key in 0..self.slab.len() {
            self.close(key);
        }
    }

    /// Sleep until the nearest connection deadline, capped at the poll
    /// quantum (wakeups for new work arrive via the poller's notify).
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut timeout = self.config.poll_interval;
        for conn in self.slab.iter().flatten() {
            timeout = timeout.min(conn.deadline.saturating_duration_since(now));
        }
        timeout
    }

    /// Apply epoch boundaries the scheduler has published since the last
    /// wakeup: stamp shard epoch counters and re-warm this worker's
    /// shards' fixed-base tables, all outside any generation lock.
    fn observe_epochs(&mut self) {
        let pending = self.link().pending_epochs.swap(0, Ordering::AcqRel);
        if pending == 0 {
            return;
        }
        let workers = self.shared.workers.max(1);
        let mut shard = self.index;
        while shard < self.shared.shards {
            self.shared.stats.shards[shard]
                .epochs
                .fetch_add(pending, Ordering::Relaxed);
            for entry in &self.shard_keys[shard] {
                entry.warm();
            }
            shard += workers;
        }
    }

    fn drain_inbox<R: rand::RngCore>(&mut self, rng: &mut R) {
        loop {
            let inbound = self.mesh.inboxes[self.index].lock().pop_front();
            let Some(inbound) = inbound else { return };
            if let Some(key) = self.adopt(inbound) {
                // Drive immediately: a fresh session may already have its
                // hello buffered, and a reject's Busy reply usually fits
                // the socket buffer in one write.
                self.drive(key, rng);
            }
        }
    }

    /// Register an inbound connection in the slab and with the poller.
    fn adopt(&mut self, inbound: Inbound<E>) -> Option<usize> {
        let now = Instant::now();
        let conn = match inbound {
            Inbound::Session { stream, guard } => {
                let entry = self.keyring.default_entry();
                let bound_generation = entry.as_ref().map_or(0, |e| e.generation());
                Conn {
                    stream,
                    reader: FrameReader::new(),
                    writer: FrameWriter::new(),
                    session: Session {
                        entry,
                        bound_generation,
                    },
                    _guard: Some(guard),
                    wire: WireStats::default(),
                    req_started: None,
                    pending_reply: 0,
                    deadline: now + self.config.read_timeout,
                    closing: false,
                    want_write: false,
                    shard: None,
                    shard_counted: false,
                    is_reject: false,
                }
            }
            Inbound::Reject { stream, writer } => Conn {
                stream,
                reader: FrameReader::new(),
                writer,
                session: Session {
                    entry: None,
                    bound_generation: 0,
                },
                _guard: None,
                wire: WireStats::default(),
                req_started: None,
                pending_reply: 0,
                deadline: now + self.config.reject_write_timeout,
                closing: true,
                want_write: true,
                shard: None,
                shard_counted: false,
                is_reject: true,
            },
            Inbound::Migrated(conn) => {
                let mut conn = *conn;
                conn.deadline = now + self.config.read_timeout;
                conn.want_write = conn.writer.has_pending();
                conn
            }
        };
        let key = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.slab.len() - 1
        });
        let interest = if conn.want_write {
            Event::writable(key)
        } else {
            Event::readable(key)
        };
        match self.link().poller.add(&conn.stream, interest) {
            Ok(()) => {
                self.slab[key] = Some(conn);
                Some(key)
            }
            Err(_) => {
                // Registration failed (fd limit, dead socket): drop the
                // connection; the guard reclaims the slot.
                if !conn.is_reject {
                    self.shared.stats.merge_wire(&conn.wire);
                }
                self.free.push(key);
                None
            }
        }
    }

    /// Advance one connection's state machine as far as its socket
    /// allows, then apply the verdict (interest re-arm, close, migrate).
    fn drive<R: rand::RngCore>(&mut self, key: usize, rng: &mut R) {
        let verdict = {
            let Worker {
                slab,
                index,
                shared,
                keyring,
                config,
                ..
            } = self;
            let Some(conn) = slab.get_mut(key).and_then(Option::as_mut) else {
                return;
            };
            drive_conn(conn, *index, shared, keyring, config, rng)
        };
        match verdict {
            Verdict::Keep => {
                let Worker { slab, shared, index, .. } = self;
                let conn = slab[key].as_mut().expect("kept conn present");
                let want_write = conn.writer.has_pending();
                if want_write != conn.want_write {
                    let interest = if want_write {
                        Event::writable(key)
                    } else {
                        Event::readable(key)
                    };
                    match shared.links[*index].poller.modify(&conn.stream, interest) {
                        Ok(()) => conn.want_write = want_write,
                        Err(_) => self.close(key),
                    }
                }
            }
            Verdict::Close => self.close(key),
            Verdict::Migrate(home) => self.migrate(key, home),
        }
    }

    fn close(&mut self, key: usize) {
        let Some(conn) = self.slab[key].take() else {
            return;
        };
        let _ = self.link().poller.delete(&conn.stream);
        if !conn.is_reject {
            self.shared.stats.merge_wire(&conn.wire);
        }
        self.free.push(key);
        // `conn` (and its SlotGuard) drops here: slot + completion
        // accounting happen exactly once per session, panics included.
    }

    fn migrate(&mut self, key: usize, home: usize) {
        let Some(mut conn) = self.slab[key].take() else {
            return;
        };
        let _ = self.link().poller.delete(&conn.stream);
        self.free.push(key);
        conn.want_write = false;
        self.shared.stats.migrations.fetch_add(1, Ordering::Relaxed);
        self.mesh.inboxes[home].lock().push_back(Inbound::Migrated(Box::new(conn)));
        let _ = self.shared.links[home].poller.notify();
    }

    /// Close connections whose current-state deadline has passed: idle
    /// sessions, write-stalled peers, and reject clients that never
    /// drained their Busy reply.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        for key in 0..self.slab.len() {
            let expired = matches!(&self.slab[key], Some(c) if c.deadline <= now);
            if expired {
                if let Some(c) = &self.slab[key] {
                    if c.is_reject && c.writer.has_pending() {
                        self.shared
                            .stats
                            .rejects_dropped
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                self.close(key);
            }
        }
    }
}

/// Which worker should own `conn`, if not the current one.
fn migration_target<E: Pairing>(conn: &Conn<E>, shared: &Shared, index: usize) -> Option<usize> {
    if shared.workers <= 1 {
        return None;
    }
    let shard = conn.shard?;
    let home = shard % shared.workers;
    (home != index).then_some(home)
}

/// Run one connection's read/decode/execute/encode/write cycle until its
/// socket would block (or the connection reaches a terminal state).
fn drive_conn<E: Pairing, R: rand::RngCore>(
    conn: &mut Conn<E>,
    index: usize,
    shared: &Shared,
    keyring: &Keyring<E>,
    config: &ServerConfig,
    rng: &mut R,
) -> Verdict {
    if conn.is_reject {
        return drive_reject(conn);
    }
    loop {
        // Write state: flush the staged reply before reading again (the
        // protocols are strict request/response ping-pong).
        if conn.writer.has_pending() {
            match conn.writer.poll_flush(&mut conn.stream) {
                Ok(true) => {
                    finish_round(conn);
                    if conn.closing {
                        return Verdict::Close;
                    }
                    conn.deadline = Instant::now() + config.read_timeout;
                    if let Some(home) = migration_target(conn, shared, index) {
                        return Verdict::Migrate(home);
                    }
                }
                Ok(false) => return Verdict::Keep,
                Err(_) => return Verdict::Close,
            }
        }
        if conn.closing {
            return Verdict::Close;
        }
        // Read state: assemble the next request frame.
        match conn.reader.poll_frame(&mut conn.stream) {
            Ok(Some(req)) => {
                conn.deadline = Instant::now() + config.read_timeout;
                process_request(conn, &req, shared, keyring, config, rng);
                if !conn.writer.has_pending() && conn.closing {
                    return Verdict::Close;
                }
                // Loop: the write state above flushes the reply, then
                // reads the next (possibly pipelined) request.
            }
            Ok(None) => return Verdict::Keep,
            // Disconnect, oversized frame, or hard I/O failure all end
            // only this session.
            Err(_) => return Verdict::Close,
        }
    }
}

/// Drive a capacity-reject connection: flush the Busy reply, then linger
/// (write side shut, reads drained and discarded) until the peer closes
/// or the reject deadline sweeps it. Closing immediately after the flush
/// would race the peer's read — its unread request in our receive buffer
/// turns the close into an RST that can destroy the reply in flight.
fn drive_reject<E: Pairing>(conn: &mut Conn<E>) -> Verdict {
    if conn.writer.has_pending() {
        match conn.writer.poll_flush(&mut conn.stream) {
            Ok(true) => {
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
            }
            Ok(false) => return Verdict::Keep,
            Err(_) => return Verdict::Close,
        }
    }
    let mut scratch = [0u8; 1024];
    loop {
        match io::Read::read(&mut conn.stream, &mut scratch) {
            Ok(0) => return Verdict::Close,
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Verdict::Keep,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Close,
        }
    }
}

/// Account a fully flushed reply against the connection's wire stats.
fn finish_round<E: Pairing>(conn: &mut Conn<E>) {
    conn.wire.frames_sent += 1;
    conn.wire.bytes_sent += 4 + conn.pending_reply;
    if let Some(t0) = conn.req_started.take() {
        conn.wire.round_latency_ns.push(t0.elapsed().as_nanos() as u64);
    }
}

/// Decode/execute/encode one request frame: dispatch under a panic guard,
/// stage the reply, and attribute the request to its key's shard.
fn process_request<E: Pairing, R: rand::RngCore>(
    conn: &mut Conn<E>,
    req: &Bytes,
    shared: &Shared,
    keyring: &Keyring<E>,
    config: &ServerConfig,
    rng: &mut R,
) {
    conn.wire.frames_received += 1;
    conn.wire.bytes_received += 4 + req.len() as u64;
    conn.req_started = Some(Instant::now());

    let session = &mut conn.session;
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if let Some(tag) = config.inject_panic_tag {
            if req.first() == Some(&tag) {
                panic!("injected fault: request tag {tag:#x}");
            }
        }
        dispatch(req, session, keyring, &shared.stats, config, rng)
    }));
    match outcome {
        Err(payload) => {
            // The dispatcher panicked. The generation lock (parking_lot)
            // unlocked during unwind; close this session only — its
            // SlotGuard reclaims the slot on drop.
            shared.stats.record_panic(payload.as_ref());
            conn.closing = true;
        }
        Ok(None) => conn.closing = true, // session shutdown tag
        Ok(Some(reply)) => {
            conn.pending_reply = reply.len() as u64;
            if conn.writer.enqueue(&reply).is_err() {
                conn.closing = true;
                return;
            }
            conn.deadline = Instant::now() + config.write_timeout;
            if let Some(entry) = conn.session.entry.as_ref() {
                let shard = shard_of(entry.id(), shared.shards);
                conn.shard = Some(shard);
                if let Some(stats) = shared.stats.shards.get(shard) {
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    if !conn.shard_counted {
                        conn.shard_counted = true;
                        stats.sessions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

struct Session<E: Pairing> {
    entry: Option<Arc<KeyEntry<E>>>,
    bound_generation: u64,
}

/// Handle one request frame; `None` ends the session (shutdown tag).
fn dispatch<E: Pairing, R: rand::RngCore>(
    req: &[u8],
    session: &mut Session<E>,
    keyring: &Keyring<E>,
    stats: &ServerStats,
    config: &ServerConfig,
    rng: &mut R,
) -> Option<Bytes> {
    let err = |stats: &ServerStats, code, detail: &str| {
        stats.error_replies.fetch_add(1, Ordering::Relaxed);
        Some(error_reply(code, detail))
    };

    let Some(&tag_byte) = req.first() else {
        return err(stats, ErrorCode::BadRequest, "empty frame");
    };
    match RequestTag::from_u8(tag_byte) {
        None => err(stats, ErrorCode::UnknownTag, "unknown request tag"),
        Some(RequestTag::Shutdown) => None,
        Some(RequestTag::Topology) => {
            // Resolved to at least a singleton at construction time.
            let Some(topology) = config.topology.as_ref() else {
                return err(stats, ErrorCode::Internal, "no topology configured");
            };
            stats.requests_topology.fetch_add(1, Ordering::Relaxed);
            Some(ok_reply(&topology.to_bytes()))
        }
        Some(RequestTag::Hello) => {
            let hello = match HelloMsg::from_bytes(&req[1..]) {
                Ok(h) => h,
                Err(e) => {
                    stats.error_replies.fetch_add(1, Ordering::Relaxed);
                    return Some(error_reply_for(&e));
                }
            };
            let Some(entry) = keyring.get(&hello.key_id) else {
                // Not in the local ring — if the fleet oracle knows the
                // owner, redirect the client there instead of failing.
                if let Some(owner) = config
                    .owner_hint
                    .as_ref()
                    .and_then(|h| h.lookup(&hello.key_id))
                {
                    stats.not_mine_replies.fetch_add(1, Ordering::Relaxed);
                    return Some(error_reply(ErrorCode::NotMine, &owner));
                }
                return err(
                    stats,
                    ErrorCode::UnknownKey,
                    &format!("no key \"{}\"", String::from_utf8_lossy(&hello.key_id)),
                );
            };
            let generation = entry.generation();
            if hello.generation != GENERATION_ANY && hello.generation != generation {
                return err(
                    stats,
                    ErrorCode::StaleGeneration,
                    &format!("server holds generation {generation}"),
                );
            }
            session.entry = Some(entry);
            session.bound_generation = generation;
            stats.requests_hello.fetch_add(1, Ordering::Relaxed);
            let mut enc = Encoder::new();
            enc.put_u64(generation);
            Some(ok_reply(&enc.finish()))
        }
        Some(tag @ (RequestTag::Decrypt | RequestTag::Refresh)) => {
            let Some(entry) = session.entry.as_ref() else {
                return err(stats, ErrorCode::UnknownKey, "no key bound to session");
            };
            let bound = session.bound_generation;
            // The generation lock: binding check, protocol step, and (for
            // refresh) persistence + generation bump are one critical
            // section — a decrypt can never interleave with a
            // half-committed refresh.
            let (reply, rebind) = entry.with_state(|state| {
                if state.generation != bound {
                    stats.error_replies.fetch_add(1, Ordering::Relaxed);
                    let detail = format!(
                        "session bound to generation {bound}, key at {}",
                        state.generation
                    );
                    return (error_reply(ErrorCode::StaleGeneration, &detail), None);
                }
                match p2_handle_frame(&mut state.p2, state.generation, req, rng) {
                    Ok((_, Some(body))) => {
                        if tag == RequestTag::Refresh {
                            let (generation, persisted) = KeyEntry::commit_refresh(state);
                            if persisted.is_err() {
                                stats.persist_failures.fetch_add(1, Ordering::Relaxed);
                            }
                            stats.requests_refresh.fetch_add(1, Ordering::Relaxed);
                            stats.refreshes.fetch_add(1, Ordering::Relaxed);
                            (ok_reply(&body), Some(generation))
                        } else {
                            stats.requests_decrypt.fetch_add(1, Ordering::Relaxed);
                            (ok_reply(&body), None)
                        }
                    }
                    Ok((_, None)) => {
                        // unreachable for Decrypt/Refresh, but keep the
                        // wire sane if it ever happens
                        stats.error_replies.fetch_add(1, Ordering::Relaxed);
                        (error_reply(ErrorCode::Internal, "no reply produced"), None)
                    }
                    Err(e) => {
                        stats.error_replies.fetch_add(1, Ordering::Relaxed);
                        (error_reply_for(&e), None)
                    }
                }
            });
            if let Some(generation) = rebind {
                // Refresh committed. Re-warm the key's fixed-base tables
                // *after* the generation lock is released — idempotent when
                // already warm, and never serialized against other
                // sessions' decrypts.
                entry.warm();
                session.bound_generation = generation;
            }
            Some(reply)
        }
    }
}

use dlr_protocol::Encoder;

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_curve::Toy;

    /// Satellite regression: a waiter that panics while holding the kick
    /// mutex poisons it; `force_epoch` and the scheduler must recover
    /// instead of cascading the panic.
    #[test]
    fn scheduler_survives_poisoned_kick_lock() {
        let ring = Arc::new(Keyring::<Toy>::new());
        let server = Server::bind("127.0.0.1:0", ring, ServerConfig::default()).unwrap();
        let handle = server.handle();

        // Poison the kick mutex the way a panicking epoch coordinator
        // would: lock, then unwind.
        let poisoner = handle.clone();
        let t = std::thread::spawn(move || {
            let _guard = poisoner.shared.kick.lock().unwrap();
            panic!("poison the kick lock");
        });
        assert!(t.join().is_err());
        assert!(handle.shared.kick.is_poisoned());

        let runner = std::thread::spawn(move || server.run().unwrap());

        // force_epoch takes the poisoned lock; it must not panic, and the
        // scheduler (also locking it) must still fire the epoch.
        handle.force_epoch();
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.epoch() < 1 {
            assert!(
                Instant::now() < deadline,
                "scheduler never fired through the poisoned lock"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        handle.shutdown();
        let stats = runner.join().unwrap();
        assert_eq!(stats.epochs, 1);
    }

    #[test]
    fn config_resolution_defaults() {
        let config = ServerConfig::default();
        let workers = config.resolved_workers();
        assert!((1..=4).contains(&workers));
        assert_eq!(config.resolved_shards(), workers);
        let explicit = ServerConfig {
            workers: 3,
            shards: 7,
            ..ServerConfig::default()
        };
        assert_eq!(explicit.resolved_workers(), 3);
        assert_eq!(explicit.resolved_shards(), 7);
    }
}
