//! Closed-loop load generator for a running [`Server`](crate::Server).
//!
//! Spawns `clients` concurrent `P1` workers; each opens its own TCP
//! session (hello with [`GENERATION_ANY`]), then issues
//! `requests_per_client` decrypt requests back-to-back, verifying every
//! recovered plaintext against the encrypted message. Decryption is
//! stateless with respect to the joint share, so each client may hold its
//! own [`Party1`] clone — the server's generation lock serializes their
//! requests against the single `P2` state.
//!
//! Transient failures (timeout, disconnect, server busy) cost one
//! reconnect + re-hello and are counted, not fatal; the outcome reports
//! throughput and latency percentiles and renders to the standard
//! `dlr-metrics` report JSON (committed as `BENCH_PR4.json` by the bench
//! harness).

use dlr_core::dlr::{self, Ciphertext, Party1, PublicKey, Share1};
use dlr_core::driver::{self, RetryPolicy, GENERATION_ANY};
use dlr_curve::{Group, Pairing};
use dlr_math::FieldElement;
use dlr_metrics::Report;
use dlr_protocol::transport::{new_transcript, RecordingTransport, TcpTransport};
use dlr_protocol::WireStats;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client sessions.
    pub clients: usize,
    /// Decrypt requests issued per client.
    pub requests_per_client: usize,
    /// Key id announced in each session's hello.
    pub key_id: Vec<u8>,
    /// Per-read deadline on client sockets.
    pub read_timeout: Option<Duration>,
    /// Reconnect budget per client before it gives up.
    pub max_reconnects: usize,
    /// Backoff between a client's reconnect attempts. Each client derives
    /// its own `jitter_seed` from its index, so a burst of `Busy` replies
    /// does not make every client retry in lockstep.
    pub backoff: RetryPolicy,
    /// Client-side `encrypt` operations timed after the decrypt phase to
    /// report encryption throughput. `0` skips the measurement.
    pub encrypt_ops: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            requests_per_client: 25,
            key_id: b"default".to_vec(),
            read_timeout: Some(Duration::from_secs(10)),
            max_reconnects: 8,
            backoff: RetryPolicy {
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(200),
                ..RetryPolicy::default()
            },
            encrypt_ops: 256,
        }
    }
}

/// Aggregated outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenOutcome {
    /// Clients spawned.
    pub clients: usize,
    /// Total decrypt requests attempted.
    pub requests: usize,
    /// Requests that returned the correct plaintext.
    pub successes: usize,
    /// Requests that failed (after per-request reconnects).
    pub failures: usize,
    /// Client threads that panicked mid-run. Their unreported requests
    /// are counted as failures; the run itself still completes and
    /// reports the surviving clients' numbers.
    pub client_panics: usize,
    /// Responses that decoded but decrypted to the wrong plaintext.
    pub mismatches: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Per-request wall-clock latencies, sorted ascending.
    pub latencies_ns: Vec<u64>,
    /// Wire statistics merged across all client transports.
    pub wire: WireStats,
    /// Client-side `encrypt` operations timed for the throughput figure.
    pub encrypt_ops: usize,
    /// Wall-clock time of the encrypt measurement loop.
    pub encrypt_elapsed: Duration,
}

impl LoadgenOutcome {
    /// Successful requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.successes as f64 / secs
        }
    }

    /// Latency percentile (`q` in `[0, 100]`) over the sorted samples,
    /// nearest-rank; `0` when no sample was recorded.
    pub fn latency_percentile_ns(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let rank = (q / 100.0 * (self.latencies_ns.len() - 1) as f64).round() as usize;
        self.latencies_ns[rank.min(self.latencies_ns.len() - 1)]
    }

    /// Client-side `encrypt` operations per second; `0` when the
    /// measurement was skipped.
    pub fn encrypt_ops_per_s(&self) -> f64 {
        let secs = self.encrypt_elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.encrypt_ops as f64 / secs
        }
    }

    /// Mean latency over all samples; `0` when none recorded.
    pub fn latency_mean_ns(&self) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let total: u128 = self.latencies_ns.iter().map(|&ns| ns as u128).sum();
        (total / self.latencies_ns.len() as u128) as u64
    }

    /// Render to a `dlr-metrics` [`Report`]: throughput and latency
    /// percentiles as metadata, merged client wire stats as a wire row,
    /// and whatever spans (`dec`, …) the client threads recorded.
    pub fn to_report(&self) -> Report {
        let mut report = Report::capture()
            .with_meta("component", "dlr-loadgen")
            .with_meta("clients", &self.clients.to_string())
            .with_meta("requests", &self.requests.to_string())
            .with_meta("successes", &self.successes.to_string())
            .with_meta("failures", &self.failures.to_string())
            .with_meta("client_panics", &self.client_panics.to_string())
            .with_meta("mismatches", &self.mismatches.to_string())
            .with_meta("elapsed_ms", &self.elapsed.as_millis().to_string())
            .with_meta(
                "throughput_rps",
                &format!("{:.2}", self.throughput_rps()),
            )
            .with_meta("latency_p50_ns", &self.latency_percentile_ns(50.0).to_string())
            .with_meta("latency_p95_ns", &self.latency_percentile_ns(95.0).to_string())
            .with_meta("latency_p99_ns", &self.latency_percentile_ns(99.0).to_string())
            .with_meta("latency_mean_ns", &self.latency_mean_ns().to_string())
            .with_meta(
                "latency_max_ns",
                &self.latencies_ns.last().copied().unwrap_or(0).to_string(),
            )
            .with_meta("encrypt_ops", &self.encrypt_ops.to_string())
            .with_meta(
                "encrypt_ops_per_s",
                &format!("{:.2}", self.encrypt_ops_per_s()),
            );
        report.push_wire("loadgen.clients", self.wire.clone());
        report
    }
}

/// Configuration for a loadgen *ladder*: the same closed-loop workload
/// repeated at a sequence of concurrency levels ("rungs"), so throughput
/// scaling with client count can be read off one run.
///
/// Each rung reuses `base` with its `clients` field replaced by the rung
/// value; `encrypt_ops` is forced to `0` on every rung (the client-side
/// encryption figure is a single-threaded measurement — repeating it per
/// rung would only add noise to an unrelated axis).
#[derive(Debug, Clone)]
pub struct LadderConfig {
    /// Concurrency levels to visit, in order (e.g. `[1, 2, 4, 8, 16]`).
    pub rungs: Vec<usize>,
    /// Decrypt requests per client at every rung.
    pub requests_per_client: usize,
    /// Template for everything else (key id, timeouts, backoff).
    pub base: LoadgenConfig,
}

impl Default for LadderConfig {
    fn default() -> Self {
        Self {
            rungs: vec![1, 2, 4, 8, 16],
            requests_per_client: 25,
            base: LoadgenConfig::default(),
        }
    }
}

/// One completed rung of a loadgen ladder.
#[derive(Debug, Clone)]
pub struct LadderRung {
    /// Concurrency level this rung ran at.
    pub clients: usize,
    /// The full closed-loop outcome at that level.
    pub outcome: LoadgenOutcome,
}

/// Run the closed-loop load generator once per rung of `ladder`, in
/// order, against the same server. The server must admit at least
/// `max(rungs)` concurrent sessions or the surplus clients will spend
/// their reconnect budget against `Busy` replies.
pub fn run_loadgen_ladder<E: Pairing, R: rand::RngCore>(
    addr: SocketAddr,
    pk: &PublicKey<E>,
    share1: &Share1<E>,
    ladder: &LadderConfig,
    rng: &mut R,
) -> Vec<LadderRung> {
    ladder
        .rungs
        .iter()
        .map(|&clients| {
            let config = LoadgenConfig {
                clients,
                requests_per_client: ladder.requests_per_client,
                encrypt_ops: 0,
                ..ladder.base.clone()
            };
            LadderRung {
                clients,
                outcome: run_loadgen::<E, _>(addr, pk, share1, &config, rng),
            }
        })
        .collect()
}

struct ClientOutcome {
    successes: usize,
    failures: usize,
    mismatches: usize,
    latencies_ns: Vec<u64>,
    wire: WireStats,
}

/// Run the closed-loop load generator against `addr`.
///
/// `share1` is the `P1` key share matching the server's `P2` share for
/// `config.key_id`; the run assumes no refresh executes concurrently
/// (each client clones the share). `message` is encrypted once and the
/// same ciphertext is decrypted by every request, so every response is
/// verifiable.
pub fn run_loadgen<E: Pairing, R: rand::RngCore>(
    addr: SocketAddr,
    pk: &PublicKey<E>,
    share1: &Share1<E>,
    config: &LoadgenConfig,
    rng: &mut R,
) -> LoadgenOutcome {
    let message = E::Gt::random(rng);
    let ct = dlr::encrypt(pk, &message, rng);

    let started = Instant::now();
    // A panicking client must not abort the whole run: its join error is
    // recorded (and its requests counted as failures below) while every
    // surviving client still reports.
    let (per_client, client_panics): (Vec<ClientOutcome>, usize) =
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..config.clients)
                .map(|idx| {
                    let pk = pk.clone();
                    let share1 = share1.clone();
                    let config = config.clone();
                    s.spawn(move || client_loop(addr, idx, pk, share1, ct, message, &config))
                })
                .collect();
            let mut panics = 0usize;
            let outcomes = handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(outcome) => Some(outcome),
                    Err(_) => {
                        panics += 1;
                        None
                    }
                })
                .collect();
            (outcomes, panics)
        });
    let elapsed = started.elapsed();

    // Client-side encryption throughput: time `encrypt_ops` fresh-scalar
    // encryptions against the (warm) public key. Uses the span-free
    // `encrypt_with_randomness` under its own span so the pinned `enc`
    // span keeps its single-call count in committed bench reports.
    let encrypt_elapsed = if config.encrypt_ops > 0 {
        let scalars: Vec<E::Scalar> = (0..config.encrypt_ops)
            .map(|_| E::Scalar::random(rng))
            .collect();
        dlr_metrics::span("loadgen.encrypt", || {
            let started = Instant::now();
            for t in &scalars {
                std::hint::black_box(dlr::encrypt_with_randomness(pk, &message, t));
            }
            started.elapsed()
        })
    } else {
        Duration::ZERO
    };

    let mut outcome = LoadgenOutcome {
        clients: config.clients,
        requests: config.clients * config.requests_per_client,
        successes: 0,
        failures: client_panics * config.requests_per_client,
        mismatches: 0,
        client_panics,
        elapsed,
        latencies_ns: Vec::new(),
        wire: WireStats::default(),
        encrypt_ops: config.encrypt_ops,
        encrypt_elapsed,
    };
    for client in per_client {
        outcome.successes += client.successes;
        outcome.failures += client.failures;
        outcome.mismatches += client.mismatches;
        outcome.latencies_ns.extend(client.latencies_ns);
        outcome.wire.merge(&client.wire);
    }
    outcome.latencies_ns.sort_unstable();
    outcome
}

fn connect(
    addr: SocketAddr,
    config: &LoadgenConfig,
) -> Option<RecordingTransport<TcpTransport>> {
    let stream = TcpStream::connect(addr).ok()?;
    let tcp = TcpTransport::new(stream);
    let _ = tcp.set_nodelay(true);
    let _ = tcp.set_read_timeout(config.read_timeout);
    let mut transport = RecordingTransport::new(tcp, new_transcript());
    driver::p1_hello(&mut transport, &config.key_id, GENERATION_ANY).ok()?;
    Some(transport)
}

fn client_loop<E: Pairing>(
    addr: SocketAddr,
    client_idx: usize,
    pk: PublicKey<E>,
    share1: Share1<E>,
    ct: Ciphertext<E>,
    message: E::Gt,
    config: &LoadgenConfig,
) -> ClientOutcome {
    let mut out = ClientOutcome {
        successes: 0,
        failures: 0,
        mismatches: 0,
        latencies_ns: Vec::with_capacity(config.requests_per_client),
        wire: WireStats::default(),
    };
    // Per-client jitter seed: clients that hit the same Busy burst spread
    // their reconnects apart instead of re-colliding in lockstep.
    let backoff = RetryPolicy {
        jitter_seed: config
            .backoff
            .jitter_seed
            .wrapping_add(1 + client_idx as u64),
        ..config.backoff.clone()
    };
    let mut p1 = Party1::new(pk, share1);
    p1.warm(); // build the per-key pairing caches before the request clock starts
    let mut rng = rand::thread_rng();
    let mut reconnects = 0usize;
    let mut transport = connect(addr, config);

    for _ in 0..config.requests_per_client {
        let mut done = false;
        while !done {
            let Some(t) = transport.as_mut() else {
                // (Re)connect failed: burn one reconnect credit, fail the
                // request if the budget is gone.
                if reconnects >= config.max_reconnects {
                    out.failures += 1;
                    done = true;
                    continue;
                }
                std::thread::sleep(backoff.backoff_delay_jittered(reconnects as u32));
                reconnects += 1;
                transport = connect(addr, config);
                if transport.is_none() {
                    out.failures += 1;
                    done = true;
                }
                continue;
            };
            let started = Instant::now();
            match driver::p1_decrypt(&mut p1, &ct, t, &mut rng) {
                Ok(recovered) => {
                    out.latencies_ns.push(started.elapsed().as_nanos() as u64);
                    if recovered == message {
                        out.successes += 1;
                    } else {
                        out.mismatches += 1;
                    }
                    done = true;
                }
                Err(e) if driver::is_retryable(&e) && reconnects < config.max_reconnects => {
                    std::thread::sleep(backoff.backoff_delay_jittered(reconnects as u32));
                    reconnects += 1;
                    if let Some(dead) = transport.take() {
                        out.wire.merge(&dead.wire_stats());
                    }
                    transport = connect(addr, config);
                }
                Err(_) => {
                    out.failures += 1;
                    done = true;
                }
            }
        }
    }
    if let Some(mut t) = transport.take() {
        let _ = driver::p1_shutdown(&mut t);
        out.wire.merge(&t.wire_stats());
    }
    out
}
