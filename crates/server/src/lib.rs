#![warn(missing_docs)]
//! # dlr-server — concurrent key-share service for the DLR `P2` role
//!
//! Turns the `P2` party of the DLR two-party scheme (PODC'12, §4) into a
//! production-shaped network service:
//!
//! * [`keyring`] — key id → `(PublicKey, Party2)` registry with a per-key
//!   **generation lock** and atomic (temp-file + rename) share
//!   persistence;
//! * [`server`] — readiness event loops (vendored epoll/kqueue poller)
//!   driving nonblocking per-connection frame state machines across a
//!   fixed set of workers, with the keyring **sharded** by key id across
//!   those workers, versioned hello/key-selection, structured error
//!   replies, an **epoch scheduler** marking leakage-period boundaries,
//!   periodic stats dumps, and graceful drain-persist-exit shutdown;
//! * [`loadgen`] — closed-loop multi-client load generator emitting
//!   throughput/latency reports through the `dlr-metrics` JSON schema.
//!
//! ## Why generations exist
//!
//! Refresh (§4.4) rotates *both* shares jointly: decrypting with `P1`'s
//! old share against `P2`'s new share silently yields garbage, not an
//! error. The server therefore binds every session to the key's refresh
//! **generation** (at accept or hello) and re-checks the binding under
//! the key's lock on every request, answering a lost race with
//! [`ErrorCode::StaleGeneration`](dlr_core::driver::ErrorCode) so the
//! client knows to re-sync instead of mis-decrypting.

pub mod keyring;
pub mod loadgen;
pub mod server;

pub use keyring::{persist_atomically, shard_of, KeyEntry, KeyState, Keyring};
pub use loadgen::{
    run_loadgen, run_loadgen_ladder, LadderConfig, LadderRung, LoadgenConfig, LoadgenOutcome,
};
pub use server::{
    EpochHook, OwnerHint, Server, ServerConfig, ServerHandle, ServerStats, ShardSnapshot,
    StatsSnapshot,
};
