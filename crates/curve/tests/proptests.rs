//! Property-based tests for the group and pairing layer (TOY parameters —
//! full bilinearity under random scalars, serialization totality).

use dlr_curve::modgroup::{Mini1009, ModGroup};
use dlr_curve::{multiexp, Group, Pairing, Toy, G};
use dlr_math::FieldElement;
use proptest::prelude::*;
use rand::SeedableRng;

type Fr = <Toy as Pairing>::Scalar;
type Gt = <Toy as Pairing>::Gt;

fn point(seed: u64) -> G<Toy> {
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    G::random(&mut r)
}

fn scalar(seed: u64) -> Fr {
    let mut r = rand::rngs::StdRng::seed_from_u64(seed ^ 0xdead);
    Fr::random(&mut r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn group_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (p, q, w) = (point(a), point(b), point(c));
        prop_assert_eq!(p.op(&q), q.op(&p));
        prop_assert_eq!(p.op(&q).op(&w), p.op(&q.op(&w)));
        prop_assert_eq!(p.op(&p.inverse()), G::<Toy>::identity());
        prop_assert!(p.is_on_curve());
        prop_assert!(p.is_in_subgroup());
    }

    #[test]
    fn exponent_homomorphism(a in any::<u64>(), x in any::<u64>(), y in any::<u64>()) {
        let p = point(a);
        let (s, t) = (scalar(x), scalar(y));
        prop_assert_eq!(p.pow(&s).op(&p.pow(&t)), p.pow(&(s + t)));
        prop_assert_eq!(p.pow(&s).pow(&t), p.pow(&(s * t)));
        prop_assert_eq!(p.pow(&s).inverse(), p.pow(&(-s)));
    }

    #[test]
    fn bilinearity_random_everything(a in any::<u64>(), b in any::<u64>(), x in any::<u64>(), y in any::<u64>()) {
        let (p, q) = (point(a), point(b));
        let (s, t) = (scalar(x), scalar(y));
        prop_assert_eq!(
            Toy::pair(&p.pow(&s), &q.pow(&t)),
            Toy::pair(&p, &q).pow(&(s * t))
        );
        prop_assert_eq!(Toy::pair(&p, &q), Toy::pair(&q, &p));
    }

    #[test]
    fn pairing_product_rule(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (p, q, w) = (point(a), point(b), point(c));
        prop_assert_eq!(
            Toy::pair(&p.op(&q), &w),
            Toy::pair(&p, &w).op(&Toy::pair(&q, &w))
        );
    }

    #[test]
    fn serialization_roundtrip_g_and_gt(a in any::<u64>(), x in any::<u64>()) {
        let p = point(a);
        prop_assert_eq!(G::<Toy>::from_bytes(&p.to_bytes()), Some(p));
        let e = Toy::pair(&p, &G::generator()).pow(&scalar(x));
        prop_assert_eq!(Gt::from_bytes(&e.to_bytes()), Some(e));
    }

    #[test]
    fn decoders_total(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let _ = G::<Toy>::from_bytes(&bytes);
        let _ = Gt::from_bytes(&bytes);
        let _ = ModGroup::<Mini1009>::from_bytes(&bytes);
    }

    #[test]
    fn multiexp_agreement(seeds in proptest::collection::vec(any::<u64>(), 0..8)) {
        let bases: Vec<G<Toy>> = seeds.iter().map(|&s| point(s)).collect();
        let exps: Vec<Fr> = seeds.iter().map(|&s| scalar(s)).collect();
        prop_assert_eq!(
            multiexp::straus_raw(&bases, &exps),
            multiexp::naive(&bases, &exps)
        );
    }

    #[test]
    fn hash_to_group_lands_in_subgroup(msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        let p = G::<Toy>::hash_to_group(b"prop-domain", &msg);
        prop_assert!(p.is_in_subgroup());
        prop_assert!(!p.is_identity());
        // deterministic
        prop_assert_eq!(G::<Toy>::hash_to_group(b"prop-domain", &msg), p);
    }

    #[test]
    fn mini_group_pow_matches_dlog(k in 0u64..1009) {
        let g = ModGroup::<Mini1009>::generator();
        let p = g.pow_vartime_limbs(&[k]);
        prop_assert_eq!(p.dlog(), k);
    }
}
