//! Prepared pairings: amortise the Miller chain of a fixed first argument.
//!
//! On the decryption hot path of the DLR scheme (Πss / HPSKE `dec_start`),
//! the ciphertext component `A = g^a` is paired against `κ+1` key
//! coordinates *per ℓ-element ciphertext vector* — every one of those
//! pairings re-walks the identical doubling/addition chain of `A`. A
//! [`PreparedPoint`] walks the chain **once** (via
//! [`miller_chain`](crate::pairing)) and caches the per-step line
//! coefficients `(λ, θ)`; each subsequent evaluation against a second
//! argument `Q` replays the cached ops, costing one `F_p` multiplication
//! plus the `F_{p²}` accumulator update per line — all `F_p` inversions
//! (one per tangent/chord slope) are gone.
//!
//! Because the cached sequence *is* the sequence the direct
//! [`tate_pairing`](crate::pairing::tate_pairing) walks, a prepared
//! evaluation is bit-for-bit equal to the direct pairing for **any** `Q`,
//! including the identity and points outside the order-`r` subgroup.
//!
//! [`PreparedPoint::multi_pairing`] additionally batches the final
//! exponentiations (one shared `F_{p²}` inversion via Montgomery's trick)
//! and, when enabled through [`crate::parallel::set_parallel_threads`],
//! fans the evaluations out over scoped worker threads with exact operation
//! accounting (see [`crate::parallel`]).
//!
//! ## Counter semantics
//!
//! Preparation itself is *not* a pairing and bumps no counter; every
//! evaluation against a `Q` bumps `pairings` by one, so op reports are
//! identical whether a call site uses `tate_pairing`, [`PreparedPoint::pair`]
//! or [`PreparedPoint::multi_pairing`].

use crate::counters;
use crate::curve::G;
use crate::gt::Gt;
use crate::pairing::{batch_final_exponentiation, final_exponentiation, miller_chain, Affine, MillerOp};
use crate::params::SsParams;
use crate::parallel;
use crate::traits::Group;
use dlr_math::{FieldElement, Fp2};

/// A first pairing argument with its Miller chain walked and cached.
///
/// Cheap to clone (one `Vec` of `F_p` pairs) and `Send + Sync`, so a single
/// preparation can be shared across the parallel fan-out workers.
#[derive(Clone, Debug)]
pub struct PreparedPoint<P: SsParams> {
    /// The cached accumulator ops, in chain order.
    ops: Vec<MillerOp<P::Fp>>,
    /// `P` was the point at infinity: every pairing against it is trivial.
    infinity: bool,
}

impl<P: SsParams> PreparedPoint<P> {
    /// Walk the Miller chain of `p` once and cache its line coefficients.
    ///
    /// Uses the batched-inversion walker
    /// ([`miller_chain_batched`](crate::pairing)): the chain advances in
    /// Jacobian coordinates and pays **two** field inversions total instead
    /// of one per step, emitting the bit-identical `(λ, θ)` sequence. Points
    /// that hit a chain degeneracy (only possible outside the odd-order
    /// subgroup) fall back to the reference affine walker. Performs no
    /// `F_{p²}` accumulator work and bumps no counter — the pairing count
    /// is charged per evaluation, not per preparation.
    pub fn prepare(p: &G<P>) -> Self {
        match p.to_affine() {
            Some((x, y)) => {
                let a = Affine { x, y };
                let ops = crate::pairing::miller_chain_batched::<P>(a).unwrap_or_else(|| {
                    let mut ops = Vec::new();
                    miller_chain::<P>(a, |op| ops.push(op));
                    ops
                });
                PreparedPoint {
                    ops,
                    infinity: false,
                }
            }
            None => PreparedPoint {
                ops: Vec::new(),
                infinity: true,
            },
        }
    }

    /// Replay the cached chain against `(x_q, y_q)`, returning the raw
    /// Miller value (zero only for out-of-subgroup `q`).
    fn miller_eval(&self, xq: &P::Fp, yq: &P::Fp) -> Fp2<P::Fp> {
        let mut f = Fp2::<P::Fp>::one();
        for op in &self.ops {
            op.apply(&mut f, xq, yq);
        }
        f
    }

    /// Raw Miller value for `q`, with the zero sentinel for identity slots
    /// (mapped to the identity by
    /// [`crate::pairing::batch_final_exponentiation`]).
    fn miller_or_sentinel(&self, q: &G<P>) -> Fp2<P::Fp> {
        counters::count_pairing();
        match (self.infinity, q.to_affine()) {
            (false, Some((xq, yq))) => self.miller_eval(&xq, &yq),
            _ => Fp2::zero(),
        }
    }

    /// `ê(P, q)` via the cached chain — equals
    /// [`tate_pairing`](crate::pairing::tate_pairing)`(P, q)` exactly.
    pub fn pair(&self, q: &G<P>) -> Gt<P> {
        let f = self.miller_or_sentinel(q);
        if f.is_zero() {
            return Gt::identity();
        }
        final_exponentiation::<P>(f)
    }

    /// `[ê(P, q) for q in qs]` with one cached Miller chain, batched final
    /// exponentiation, and (opt-in) parallel fan-out over the evaluations.
    ///
    /// Bumps `pairings` once per element of `qs`, on the calling thread's
    /// counters even when workers do the arithmetic.
    pub fn multi_pairing(&self, qs: &[G<P>]) -> Vec<Gt<P>> {
        parallel::fan_out_chunks(qs, |chunk| self.multi_pairing_serial(chunk))
    }

    /// Sequential chunk evaluator behind [`Self::multi_pairing`].
    fn multi_pairing_serial(&self, qs: &[G<P>]) -> Vec<Gt<P>> {
        let millers: Vec<Fp2<P::Fp>> =
            qs.iter().map(|q| self.miller_or_sentinel(q)).collect();
        batch_final_exponentiation::<P>(&millers)
    }
}

/// Convenience: prepare `p` once and evaluate against every `q`.
pub fn multi_pairing<P: SsParams>(p: &G<P>, qs: &[G<P>]) -> Vec<Gt<P>> {
    PreparedPoint::<P>::prepare(p).multi_pairing(qs)
}

/// An `Arc`-shared, lazily-built batch of prepared second-slot pairing
/// arguments — the per-key cache pattern of
/// [`LazyFixedBase`](crate::fixedbase::LazyFixedBase) applied to Miller
/// chains: cheap to clone (all clones share one cell), built at most once,
/// warmed explicitly at key load / after refresh rather than on the first
/// decrypt. Dropping the cache and replacing it with a fresh one is the
/// invalidation path (a `OnceLock` cannot be cleared in place).
///
/// Like the comb-table caches, this carries no semantic state: clones
/// compare equal regardless of warmth and hash to nothing.
pub struct LazyPreparedBatch<E: crate::traits::Pairing> {
    cell: std::sync::Arc<std::sync::OnceLock<Vec<E::PreparedQ>>>,
}

impl<E: crate::traits::Pairing> LazyPreparedBatch<E> {
    /// A cold cache.
    pub fn new() -> Self {
        Self {
            cell: std::sync::Arc::new(std::sync::OnceLock::new()),
        }
    }

    /// The prepared chains for `points`, building them on first use (all
    /// clones then share the result). Preparation bumps no counter.
    pub fn get(&self, points: &[E::G2]) -> &[E::PreparedQ] {
        self.cell
            .get_or_init(|| points.iter().map(E::prepare_q).collect())
    }

    /// Build the cache now (e.g. at key load or right after a refresh
    /// commits) so no decrypt pays the Miller-chain walks.
    pub fn warm(&self, points: &[E::G2]) {
        let _ = self.get(points);
    }

    /// True once the chains are built.
    pub fn is_warm(&self) -> bool {
        self.cell.get().is_some()
    }
}

impl<E: crate::traits::Pairing> Default for LazyPreparedBatch<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: crate::traits::Pairing> Clone for LazyPreparedBatch<E> {
    fn clone(&self) -> Self {
        Self {
            cell: std::sync::Arc::clone(&self.cell),
        }
    }
}

impl<E: crate::traits::Pairing> core::fmt::Debug for LazyPreparedBatch<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "LazyPreparedBatch({})",
            if self.is_warm() { "warm" } else { "cold" }
        )
    }
}

impl<E: crate::traits::Pairing> PartialEq for LazyPreparedBatch<E> {
    fn eq(&self, _other: &Self) -> bool {
        true // caches carry no semantic state
    }
}
impl<E: crate::traits::Pairing> Eq for LazyPreparedBatch<E> {}
impl<E: crate::traits::Pairing> core::hash::Hash for LazyPreparedBatch<E> {
    fn hash<H: core::hash::Hasher>(&self, _state: &mut H) {}
}

/// `[ê(P_k, q) for each cached chain]`: many **prepared** first arguments
/// against one shared second argument, with batched final exponentiation
/// and the same opt-in parallel fan-out as
/// [`PreparedPoint::multi_pairing`]. This is the steady-state shape of the
/// prepared-key cache: the per-key fixed points are prepared once and the
/// fresh ciphertext component slots in as `q` (by pairing symmetry on the
/// Type-1 map). Bumps `pairings` once per cached chain.
pub fn multi_pairing_many<P: SsParams>(preps: &[PreparedPoint<P>], q: &G<P>) -> Vec<Gt<P>> {
    parallel::fan_out_chunks(preps, |chunk| {
        let millers: Vec<Fp2<P::Fp>> = chunk.iter().map(|p| p.miller_or_sentinel(q)).collect();
        batch_final_exponentiation::<P>(&millers)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::tate_pairing;
    use crate::params::{Ss512, Toy};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn prepared_matches_direct_toy() {
        let mut r = rng();
        for _ in 0..8 {
            let p = G::<Toy>::random(&mut r);
            let q = G::<Toy>::random(&mut r);
            let prep = PreparedPoint::<Toy>::prepare(&p);
            assert_eq!(prep.pair(&q), tate_pairing::<Toy>(&p, &q));
        }
    }

    #[test]
    fn prepared_identity_slots() {
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let id = G::<Toy>::identity();
        assert!(PreparedPoint::<Toy>::prepare(&p).pair(&id).is_identity());
        let prep_id = PreparedPoint::<Toy>::prepare(&id);
        assert!(prep_id.pair(&p).is_identity());
        assert!(prep_id
            .multi_pairing(&[p, id])
            .iter()
            .all(Gt::is_identity));
    }

    #[test]
    fn multi_pairing_matches_per_element() {
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let qs: Vec<G<Toy>> = (0..9).map(|_| G::<Toy>::random(&mut r)).collect();
        let batched = multi_pairing::<Toy>(&p, &qs);
        for (q, e) in qs.iter().zip(&batched) {
            assert_eq!(*e, tate_pairing::<Toy>(&p, q));
        }
    }

    #[test]
    fn multi_pairing_counts_one_pairing_per_q() {
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let qs: Vec<G<Toy>> = (0..5).map(|_| G::<Toy>::random(&mut r)).collect();
        let prep = PreparedPoint::<Toy>::prepare(&p);
        let (_, ops) = counters::measure(|| prep.multi_pairing(&qs));
        assert_eq!(ops.pairings, qs.len() as u64);
        assert_eq!(ops.gt_op, 0);
    }

    #[test]
    fn prepared_matches_direct_out_of_subgroup() {
        let mut r = rng();
        let oos = crate::util::out_of_subgroup_point::<Toy>();
        let p = G::<Toy>::random(&mut r);
        // Both slots: prepared equality must hold for ANY second argument,
        // and preparing a non-subgroup point must match too.
        let prep_p = PreparedPoint::<Toy>::prepare(&p);
        assert_eq!(prep_p.pair(&oos), tate_pairing::<Toy>(&p, &oos));
        let prep_oos = PreparedPoint::<Toy>::prepare(&oos);
        assert_eq!(prep_oos.pair(&p), tate_pairing::<Toy>(&oos, &p));
        let batched = prep_oos.multi_pairing(&[p, oos]);
        assert_eq!(batched[0], tate_pairing::<Toy>(&oos, &p));
        assert_eq!(batched[1], tate_pairing::<Toy>(&oos, &oos));
    }

    #[test]
    fn multi_pairing_parallel_matches_sequential() {
        // Byte-identical results AND op deltas under the thread fan-out.
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                crate::parallel::set_parallel_threads(0);
            }
        }
        let _guard = Guard;
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let qs: Vec<G<Toy>> = (0..13).map(|_| G::<Toy>::random(&mut r)).collect();
        let prep = PreparedPoint::<Toy>::prepare(&p);

        crate::parallel::set_parallel_threads(0);
        let (seq, seq_ops) = counters::measure(|| prep.multi_pairing(&qs));
        crate::parallel::set_parallel_threads(4);
        let (par, par_ops) = counters::measure(|| prep.multi_pairing(&qs));

        assert_eq!(seq, par);
        assert_eq!(seq_ops, par_ops);
        assert_eq!(par_ops.pairings, qs.len() as u64);
    }

    #[test]
    fn ss512_prepared_smoke() {
        let mut r = rng();
        let g = G::<Ss512>::generator();
        let q = G::<Ss512>::random(&mut r);
        let prep = PreparedPoint::<Ss512>::prepare(&g);
        assert_eq!(prep.pair(&q), tate_pairing::<Ss512>(&g, &q));
        let batched = prep.multi_pairing(&[q, g]);
        assert_eq!(batched[0], tate_pairing::<Ss512>(&g, &q));
        assert_eq!(batched[1], tate_pairing::<Ss512>(&g, &g));
    }
}
