//! Cross-request batch decryption context.
//!
//! `P2`'s decrypt response is `ℓ` target-group multi-exponentiations per
//! ciphertext coordinate, all against the **same** fixed exponent vector —
//! the share `s ∈ Z_p^ℓ` — while the bases change per request. When the
//! server batches concurrent requests for one key, everything derived from
//! the exponents alone can be computed once per flush instead of once per
//! multiexp: the canonical limb recoding, the nonzero count, the highest
//! set bit, and the Straus/Pippenger cost-model dispatch.
//! [`BatchDecryptCtx`] captures that per-key precomputation and exposes a
//! `product_of_powers` entry point that is **indistinguishable from
//! [`Group::product_of_powers`] to both the instrumentation and the
//! arithmetic**:
//!
//! * it bumps exactly `bases.len()` exponentiation counters per call, the
//!   same wrapper-level accounting as the sequential path (engine
//!   internals are uncounted in both), and
//! * it runs the identical engine at the identical window width that
//!   [`crate::multiexp::multiexp`] would pick — the dispatch is
//!   deterministic in `(nonzero, max_bits)`, both fixed by the exponent
//!   vector — over canonical group elements, so results are bit-identical.
//!
//! That is the parity argument behind the server's dynamic batching
//! (DESIGN.md §5): `tools/bench-compare.sh` sees the same per-request op
//! fingerprint whether a request was served inline or in a batch of 64.
//!
//! The context targets the generic Straus/Pippenger dispatcher — exactly
//! the path the target group `Gt` uses. (The source curve group overrides
//! `product_of_powers` with a wNAF engine; building a ctx for it would
//! change the engine, so don't.)

use crate::counters;
use crate::multiexp::{
    best_window, pippenger_cost, pippenger_with_window, recode, straus_cost, straus_with_window,
};
use crate::traits::{Group, GroupKind};
use core::marker::PhantomData;

/// Which engine the dispatcher would run for this exponent shape, at which
/// window width. Resolved once at construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Plan {
    /// Every exponent is zero: the product is the identity.
    Identity,
    /// Straus interleaving at the cost-model argmin window.
    Straus(usize),
    /// Pippenger bucket windows at the cost-model argmin window.
    Pippenger(usize),
}

/// Shared per-key precomputation for batched `∏ basesᵢ^{sᵢ}` evaluation:
/// one exponent recoding + engine dispatch, reused across every multiexp
/// in a flush. See the module docs for the parity argument.
pub struct BatchDecryptCtx<G: Group> {
    exp_limbs: Vec<Vec<u64>>,
    max_bits: usize,
    plan: Plan,
    _group: PhantomData<fn() -> G>,
}

impl<G: Group> BatchDecryptCtx<G> {
    /// Recode the fixed exponent vector and resolve the engine dispatch.
    /// Uncounted, like the recoding inside [`crate::multiexp::multiexp`].
    pub fn new(exps: &[G::Scalar]) -> Self {
        let (exp_limbs, max_bits) = recode::<G>(exps);
        let plan = match max_bits {
            None => Plan::Identity,
            Some(bits) => {
                let nonzero = exp_limbs
                    .iter()
                    .filter(|l| l.iter().any(|x| *x != 0))
                    .count();
                let ws = best_window(nonzero, bits, straus_cost);
                let wp = best_window(nonzero, bits, pippenger_cost);
                if pippenger_cost(nonzero, bits, wp) < straus_cost(nonzero, bits, ws) {
                    Plan::Pippenger(wp)
                } else {
                    Plan::Straus(ws)
                }
            }
        };
        Self {
            exp_limbs,
            max_bits: max_bits.unwrap_or(0),
            plan,
            _group: PhantomData,
        }
    }

    /// Number of exponents the context was built over; `bases` passed to
    /// [`Self::product_of_powers`] must match it.
    pub fn len(&self) -> usize {
        self.exp_limbs.len()
    }

    /// `true` when the context covers zero exponents.
    pub fn is_empty(&self) -> bool {
        self.exp_limbs.is_empty()
    }

    /// `∏ basesᵢ^{sᵢ}` over the context's exponents — same accounting
    /// (`bases.len()` exponentiations) and same engine/window/result as
    /// [`Group::product_of_powers`], minus the per-call recoding and
    /// dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `bases.len() != self.len()`.
    pub fn product_of_powers(&self, bases: &[G]) -> G {
        assert_eq!(bases.len(), self.exp_limbs.len(), "bases/exps length mismatch");
        for _ in 0..bases.len() {
            match G::KIND {
                GroupKind::Target => counters::count_gt_pow(),
                _ => counters::count_g_pow(),
            }
        }
        match self.plan {
            Plan::Identity => G::identity(),
            Plan::Straus(w) => straus_with_window(bases, &self.exp_limbs, self.max_bits, w),
            Plan::Pippenger(w) => pippenger_with_window(bases, &self.exp_limbs, self.max_bits, w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::measure;
    use crate::modgroup::{Mini1009, ModGroup};
    use dlr_math::FieldElement;
    use rand::SeedableRng;

    type MG = ModGroup<Mini1009>;
    type S = <MG as Group>::Scalar;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(29)
    }

    #[test]
    fn ctx_counts_and_results_match_sequential_path() {
        // The parity contract: for every batch shape, a ctx-served multiexp
        // is indistinguishable from `Group::product_of_powers` in both the
        // returned element and the counter fingerprint.
        let mut r = rng();
        for n in [1usize, 2, 9, 17, 64] {
            let exps: Vec<S> = (0..n).map(|_| S::random(&mut r)).collect();
            let ctx = BatchDecryptCtx::<MG>::new(&exps);
            for _round in 0..3 {
                let bases: Vec<MG> = (0..n).map(|_| MG::random(&mut r)).collect();
                let (seq, seq_ops) = measure(|| MG::product_of_powers(&bases, &exps));
                let (bat, bat_ops) = measure(|| ctx.product_of_powers(&bases));
                assert_eq!(seq, bat, "result mismatch at n={n}");
                assert_eq!(seq_ops, bat_ops, "op fingerprint mismatch at n={n}");
            }
        }
    }

    #[test]
    fn ctx_handles_sparse_and_zero_exponents() {
        let mut r = rng();
        let shapes: Vec<Vec<S>> = vec![
            vec![S::zero(); 6],
            {
                let mut e = vec![S::zero(); 6];
                e[3] = S::one();
                e
            },
            (0..6)
                .map(|i| if i % 2 == 0 { S::zero() } else { S::random(&mut r) })
                .collect(),
        ];
        for exps in shapes {
            let ctx = BatchDecryptCtx::<MG>::new(&exps);
            let bases: Vec<MG> = (0..exps.len()).map(|_| MG::random(&mut r)).collect();
            let (seq, seq_ops) = measure(|| MG::product_of_powers(&bases, &exps));
            let (bat, bat_ops) = measure(|| ctx.product_of_powers(&bases));
            assert_eq!(seq, bat);
            assert_eq!(seq_ops, bat_ops);
        }
    }

    #[test]
    fn ctx_matches_on_target_group() {
        // Gt is the group the server actually batches: exercise the
        // Target-kind counter arm over real pairing-derived elements.
        use crate::gt::Gt;
        use crate::params::{FrToy, Toy};
        let mut r = rng();
        let exps: Vec<FrToy> = (0..9).map(|_| FrToy::random(&mut r)).collect();
        let bases: Vec<Gt<Toy>> = (0..9)
            .map(|_| Gt::<Toy>::generator_pow(&FrToy::random(&mut r)))
            .collect();
        let ctx = BatchDecryptCtx::<Gt<Toy>>::new(&exps);
        let (seq, seq_ops) = measure(|| Gt::<Toy>::product_of_powers(&bases, &exps));
        let (bat, bat_ops) = measure(|| ctx.product_of_powers(&bases));
        assert_eq!(seq, bat);
        assert_eq!(seq_ops, bat_ops);
        assert_eq!(seq_ops.gt_pow, 9, "wrapper-level accounting is n pows");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ctx_rejects_mismatched_bases() {
        let mut r = rng();
        let exps: Vec<S> = (0..4).map(|_| S::random(&mut r)).collect();
        let ctx = BatchDecryptCtx::<MG>::new(&exps);
        let bases: Vec<MG> = (0..3).map(|_| MG::random(&mut r)).collect();
        let _ = ctx.product_of_powers(&bases);
    }
}
