//! Multi-exponentiation: shared-doubling Straus (interleaved windowed)
//! method.
//!
//! The heart of the paper's protocols is `∏ aᵢ^{sᵢ}` over `ℓ ≈ 3κ` bases
//! (Πss decryption, HPSKE products, the `P2` computation in both the
//! decryption and refresh protocols). Straus interleaving shares the
//! ~`log r` doublings across all bases, turning `ℓ` full exponentiations
//! into one doubling chain plus `ℓ·log r / w` table additions. The
//! `bench_a2_multiexp` ablation quantifies the win over the naive method.

use crate::traits::Group;
use dlr_math::PrimeField;

/// Window width in bits.
const WINDOW: usize = 4;

/// Naive multi-exponentiation (one full `pow` per base). Used as the
/// correctness reference and as the ablation baseline.
pub fn naive<G: Group>(bases: &[G], exps: &[G::Scalar]) -> G {
    assert_eq!(bases.len(), exps.len(), "bases/exps length mismatch");
    let mut acc = G::identity();
    for (b, e) in bases.iter().zip(exps.iter()) {
        acc = acc.raw_op(&b.pow_vartime_limbs(&e.to_canonical_limbs()));
    }
    acc
}

/// Straus interleaved multi-exponentiation with 4-bit windows,
/// uninstrumented (callers go through [`Group::product_of_powers`]).
///
/// Sparse-exponent aware: bases whose scalar is zero get no table (their
/// factor is the identity), zero nibbles skip the table addition, and the
/// shared doubling chain starts at the highest set bit across all
/// exponents rather than the full modulus width — `∏ aᵢ^{sᵢ}` with small
/// or mostly-zero `sᵢ` costs proportionally less.
pub fn straus_raw<G: Group>(bases: &[G], exps: &[G::Scalar]) -> G {
    assert_eq!(bases.len(), exps.len(), "bases/exps length mismatch");
    if bases.is_empty() {
        return G::identity();
    }
    let exp_limbs: Vec<Vec<u64>> = exps.iter().map(|e| e.to_canonical_limbs()).collect();

    // Highest set bit position across all exponents (None = all zero).
    let mut max_bits: Option<usize> = None;
    for limbs in &exp_limbs {
        for (i, w) in limbs.iter().enumerate() {
            if *w != 0 {
                let top = i * 64 + (64 - w.leading_zeros() as usize);
                max_bits = Some(max_bits.map_or(top, |m| m.max(top)));
            }
        }
    }
    let Some(max_bits) = max_bits else {
        return G::identity();
    };

    // Per-base tables: table[i][d] = bases[i]^d, d ∈ [0, 2^WINDOW);
    // zero-scalar bases contribute nothing and get no table.
    let table_size = 1usize << WINDOW;
    let tables: Vec<Option<Vec<G>>> = bases
        .iter()
        .zip(&exp_limbs)
        .map(|(b, limbs)| {
            if limbs.iter().all(|w| *w == 0) {
                return None;
            }
            let mut t = Vec::with_capacity(table_size);
            t.push(G::identity());
            for d in 1..table_size {
                t.push(t[d - 1].raw_op(b));
            }
            Some(t)
        })
        .collect();

    let windows = max_bits.div_ceil(WINDOW);

    let mut acc = G::identity();
    for w in (0..windows).rev() {
        for _ in 0..WINDOW {
            acc = acc.raw_double();
        }
        let bit_pos = w * WINDOW;
        for (limbs, table) in exp_limbs.iter().zip(&tables) {
            let Some(table) = table else { continue };
            let d = nibble(limbs, bit_pos);
            if d != 0 {
                acc = acc.raw_op(&table[d]);
            }
        }
    }
    acc
}

/// Extract `WINDOW` bits starting at `bit_pos` (may span a limb boundary).
fn nibble(limbs: &[u64], bit_pos: usize) -> usize {
    let limb = bit_pos / 64;
    let off = bit_pos % 64;
    if limb >= limbs.len() {
        return 0;
    }
    let mut v = limbs[limb] >> off;
    if off + WINDOW > 64 && limb + 1 < limbs.len() {
        v |= limbs[limb + 1] << (64 - off);
    }
    (v as usize) & ((1 << WINDOW) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_spans_limb_boundary() {
        let limbs = [0x8000_0000_0000_0000u64, 0b101];
        // bits 63..67 = 1 | (0b101 << 1) = 0b1011
        assert_eq!(nibble(&limbs, 63), 0b1011);
        assert_eq!(nibble(&limbs, 64), 0b0101);
        assert_eq!(nibble(&limbs, 128), 0);
    }

    // Cross-checks of straus vs naive on dense random exponents live in
    // `modgroup::tests` and `curve::tests`; the sparse/degenerate shapes
    // the zero-skipping paths introduce are covered here.

    use crate::modgroup::{Mini1009, ModGroup};
    use dlr_math::FieldElement;
    use rand::SeedableRng;

    type MG = ModGroup<Mini1009>;
    type S = <MG as Group>::Scalar;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(17)
    }

    #[test]
    fn straus_matches_naive_on_sparse_exponents() {
        let mut r = rng();
        let bases: Vec<MG> = (0..6).map(|_| MG::random(&mut r)).collect();
        // Exponent vectors mixing zeros, tiny values and full-width values.
        let shapes: Vec<Vec<S>> = vec![
            vec![S::zero(); 6],
            {
                let mut e = vec![S::zero(); 6];
                e[3] = S::one();
                e
            },
            {
                let mut e = vec![S::zero(); 6];
                e[0] = S::from_u64(2);
                e[5] = S::from_u64(15);
                e
            },
            (0..6)
                .map(|i| if i % 2 == 0 { S::zero() } else { S::random(&mut r) })
                .collect(),
            vec![S::from_u64(1), S::zero(), S::from_u64(16), S::zero(), S::from_u64(17), S::zero()],
        ];
        for exps in shapes {
            assert_eq!(straus_raw(&bases, &exps), naive(&bases, &exps));
        }
    }

    #[test]
    fn straus_all_zero_is_identity() {
        let mut r = rng();
        let bases: Vec<MG> = (0..4).map(|_| MG::random(&mut r)).collect();
        let exps = vec![S::zero(); 4];
        assert!(straus_raw(&bases, &exps).is_identity());
    }

    #[test]
    fn straus_single_small_exponent() {
        let mut r = rng();
        let b = MG::random(&mut r);
        for e in 0..20u64 {
            let exps = [S::from_u64(e)];
            assert_eq!(straus_raw(&[b], &exps), naive(&[b], &exps));
        }
    }
}
