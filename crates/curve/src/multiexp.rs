//! Multi-exponentiation: shared-doubling Straus (interleaved windowed)
//! method.
//!
//! The heart of the paper's protocols is `∏ aᵢ^{sᵢ}` over `ℓ ≈ 3κ` bases
//! (Πss decryption, HPSKE products, the `P2` computation in both the
//! decryption and refresh protocols). Straus interleaving shares the
//! ~`log r` doublings across all bases, turning `ℓ` full exponentiations
//! into one doubling chain plus `ℓ·log r / w` table additions. The
//! `bench_a2_multiexp` ablation quantifies the win over the naive method.

use crate::traits::Group;
use dlr_math::PrimeField;

/// Window width in bits.
const WINDOW: usize = 4;

/// Naive multi-exponentiation (one full `pow` per base). Used as the
/// correctness reference and as the ablation baseline.
pub fn naive<G: Group>(bases: &[G], exps: &[G::Scalar]) -> G {
    assert_eq!(bases.len(), exps.len(), "bases/exps length mismatch");
    let mut acc = G::identity();
    for (b, e) in bases.iter().zip(exps.iter()) {
        acc = acc.raw_op(&b.pow_vartime_limbs(&e.to_canonical_limbs()));
    }
    acc
}

/// Straus interleaved multi-exponentiation with 4-bit windows,
/// uninstrumented (callers go through [`Group::product_of_powers`]).
pub fn straus_raw<G: Group>(bases: &[G], exps: &[G::Scalar]) -> G {
    assert_eq!(bases.len(), exps.len(), "bases/exps length mismatch");
    if bases.is_empty() {
        return G::identity();
    }
    // Per-base tables: table[i][d] = bases[i]^d, d ∈ [0, 2^WINDOW).
    let table_size = 1usize << WINDOW;
    let tables: Vec<Vec<G>> = bases
        .iter()
        .map(|b| {
            let mut t = Vec::with_capacity(table_size);
            t.push(G::identity());
            for d in 1..table_size {
                t.push(t[d - 1].raw_op(b));
            }
            t
        })
        .collect();

    let exp_limbs: Vec<Vec<u64>> = exps.iter().map(|e| e.to_canonical_limbs()).collect();
    let max_bits = G::Scalar::modulus_bits() as usize;
    let windows = max_bits.div_ceil(WINDOW);

    let mut acc = G::identity();
    for w in (0..windows).rev() {
        for _ in 0..WINDOW {
            acc = acc.raw_double();
        }
        let bit_pos = w * WINDOW;
        for (i, limbs) in exp_limbs.iter().enumerate() {
            let d = nibble(limbs, bit_pos);
            if d != 0 {
                acc = acc.raw_op(&tables[i][d]);
            }
        }
    }
    acc
}

/// Extract `WINDOW` bits starting at `bit_pos` (may span a limb boundary).
fn nibble(limbs: &[u64], bit_pos: usize) -> usize {
    let limb = bit_pos / 64;
    let off = bit_pos % 64;
    if limb >= limbs.len() {
        return 0;
    }
    let mut v = limbs[limb] >> off;
    if off + WINDOW > 64 && limb + 1 < limbs.len() {
        v |= limbs[limb + 1] << (64 - off);
    }
    (v as usize) & ((1 << WINDOW) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_spans_limb_boundary() {
        let limbs = [0x8000_0000_0000_0000u64, 0b101];
        // bits 63..67 = 1 | (0b101 << 1) = 0b1011
        assert_eq!(nibble(&limbs, 63), 0b1011);
        assert_eq!(nibble(&limbs, 64), 0b0101);
        assert_eq!(nibble(&limbs, 128), 0);
    }

    // Cross-checks of straus vs naive live in `modgroup::tests` and
    // `curve::tests`, where concrete groups exist.
}
