//! Multi-exponentiation: size-adaptive Pippenger bucket windows with a
//! shared-doubling Straus fallback for small batches.
//!
//! The heart of the paper's protocols is `∏ aᵢ^{sᵢ}` over `ℓ ≈ 3κ` bases
//! (Πss decryption, HPSKE products, the `P2` computation in both the
//! decryption and refresh protocols). Two engines cover the size spectrum:
//!
//! * **Straus interleaving** ([`straus_raw`]) shares the ~`log r` doublings
//!   across all bases, turning `ℓ` full exponentiations into one doubling
//!   chain plus `ℓ·log r / w` table additions. Its per-base table build
//!   (`2^w − 1` group ops each) makes it the small-`ℓ` winner.
//! * **Pippenger bucket windows** ([`pippenger_raw`]) spend no per-base
//!   setup at all: each window of exponent bits scatters the bases into
//!   `2^w − 1` buckets and collapses them with the running-sum trick, so
//!   the asymptotic cost is `bits/w · (ℓ + 2^{w+1})` — the wide-`ℓ` winner
//!   (heavy-leakage parameter sets push `ℓ = 3κ` into the thousands).
//!
//! [`multiexp`] picks the cheaper engine per call from a deterministic
//! group-operation cost model; [`Group::product_of_powers`] routes every
//! protocol call site through it. Both engines skip zero scalars, start the
//! doubling chain at the highest set bit, and choose their window width
//! from the batch shape rather than a hardcoded constant. The
//! `bench_a2_multiexp` ablation quantifies the crossover (EXPERIMENTS.md
//! table A8).

use crate::traits::Group;
use dlr_math::limbs::{bits_slice, window};
use dlr_math::PrimeField;

/// Widest window either engine will use (bounds bucket/table memory).
const MAX_WINDOW: usize = 13;

/// Naive multi-exponentiation (one full `pow` per base). Used as the
/// correctness reference and as the ablation baseline.
pub fn naive<G: Group>(bases: &[G], exps: &[G::Scalar]) -> G {
    assert_eq!(bases.len(), exps.len(), "bases/exps length mismatch");
    let mut acc = G::identity();
    for (b, e) in bases.iter().zip(exps.iter()) {
        acc = acc.raw_op(&b.pow_vartime_limbs(&e.to_canonical_limbs()));
    }
    acc
}

/// Straus table-build + interleave cost in group operations, for `n`
/// nonzero bases of `bits` significant exponent bits at window `w`.
pub fn straus_cost(n: usize, bits: usize, w: usize) -> usize {
    let windows = bits.div_ceil(w);
    // Per-base table: 2^w − 1 ops. Doubling chain: w per window. Table
    // additions: one per base per window, minus the expected 2^−w zero
    // digits (scaled integer math to stay deterministic).
    n * ((1 << w) - 1) + windows * w + ((windows * n * ((1 << w) - 1)) >> w)
}

/// Pippenger cost in group operations: per window, one bucket add per
/// base plus `2·(2^w − 1)` running-sum ops plus `w` doublings.
pub fn pippenger_cost(n: usize, bits: usize, w: usize) -> usize {
    let windows = bits.div_ceil(w);
    windows * (n + 2 * ((1 << w) - 1) + w)
}

/// Deterministic argmin of a cost model over the window range.
pub fn best_window(n: usize, bits: usize, cost: fn(usize, usize, usize) -> usize) -> usize {
    let mut best = (1, cost(n, bits, 1));
    for w in 2..=MAX_WINDOW.min(bits.max(1)) {
        let c = cost(n, bits, w);
        if c < best.1 {
            best = (w, c);
        }
    }
    best.0
}

/// Canonical limbs of every exponent plus the highest set bit across the
/// batch (`None` when every exponent is zero).
fn canonical_exponents<G: Group>(exps: &[G::Scalar]) -> (Vec<Vec<u64>>, Option<usize>) {
    let limbs: Vec<Vec<u64>> = exps.iter().map(|e| e.to_canonical_limbs()).collect();
    let max_bits = limbs
        .iter()
        .map(|l| bits_slice(l) as usize)
        .max()
        .filter(|b| *b > 0);
    (limbs, max_bits)
}

/// Straus interleaved multi-exponentiation with an adaptive window width,
/// uninstrumented (callers go through [`Group::product_of_powers`]).
///
/// Sparse-exponent aware: bases whose scalar is zero get no table (their
/// factor is the identity), zero digits skip the table addition, and the
/// shared doubling chain starts at the highest set bit across all
/// exponents rather than the full modulus width — `∏ aᵢ^{sᵢ}` with small
/// or mostly-zero `sᵢ` costs proportionally less. The window width is the
/// cost-model argmin for the batch shape `(n, bits)` instead of the former
/// hardcoded 4 bits, so single-base and few-bit calls stop overpaying for
/// table space.
pub fn straus_raw<G: Group>(bases: &[G], exps: &[G::Scalar]) -> G {
    assert_eq!(bases.len(), exps.len(), "bases/exps length mismatch");
    if bases.is_empty() {
        return G::identity();
    }
    let (exp_limbs, max_bits) = canonical_exponents::<G>(exps);
    let Some(max_bits) = max_bits else {
        return G::identity();
    };
    let nonzero = exp_limbs.iter().filter(|l| bits_slice(l) > 0).count();
    let w = best_window(nonzero, max_bits, straus_cost);
    straus_with_window(bases, &exp_limbs, max_bits, w)
}

/// Straus engine at an explicit window width (exposed to the benches for
/// window ablations; protocol code uses [`straus_raw`] / [`multiexp`]).
pub fn straus_with_window<G: Group>(
    bases: &[G],
    exp_limbs: &[Vec<u64>],
    max_bits: usize,
    w: usize,
) -> G {
    // Per-base tables: table[i][d] = bases[i]^d, d ∈ [0, 2^w);
    // zero-scalar bases contribute nothing and get no table.
    let table_size = 1usize << w;
    let tables: Vec<Option<Vec<G>>> = bases
        .iter()
        .zip(exp_limbs)
        .map(|(b, limbs)| {
            if limbs.iter().all(|l| *l == 0) {
                return None;
            }
            let mut t = Vec::with_capacity(table_size);
            t.push(G::identity());
            for d in 1..table_size {
                t.push(t[d - 1].raw_op(b));
            }
            Some(t)
        })
        .collect();

    let windows = max_bits.div_ceil(w);

    let mut acc = G::identity();
    for win in (0..windows).rev() {
        for _ in 0..w {
            acc = acc.raw_double();
        }
        let bit_pos = win * w;
        for (limbs, table) in exp_limbs.iter().zip(&tables) {
            let Some(table) = table else { continue };
            let d = window(limbs, bit_pos, w);
            if d != 0 {
                acc = acc.raw_op(&table[d]);
            }
        }
    }
    acc
}

/// Pippenger bucket-window multi-exponentiation, uninstrumented.
///
/// For each window of exponent bits (most significant first) every base
/// with a nonzero digit `d` is added into bucket `d`; the buckets collapse
/// with the running-sum trick (`Σ d·B_d` via two adds per nonempty bucket,
/// high to low), and the accumulator shifts by `w` doublings between
/// windows. No per-base precomputation, so cost grows as
/// `bits/w · (n + 2^{w+1})` — past a few hundred bases this beats Straus'
/// table builds decisively. Zero scalars are skipped up front and the
/// doubling chain starts at the batch's highest set bit.
pub fn pippenger_raw<G: Group>(bases: &[G], exps: &[G::Scalar]) -> G {
    assert_eq!(bases.len(), exps.len(), "bases/exps length mismatch");
    let (exp_limbs, max_bits) = canonical_exponents::<G>(exps);
    let Some(max_bits) = max_bits else {
        return G::identity();
    };
    let nonzero = exp_limbs.iter().filter(|l| bits_slice(l) > 0).count();
    let w = best_window(nonzero, max_bits, pippenger_cost);
    pippenger_with_window(bases, &exp_limbs, max_bits, w)
}

/// Pippenger engine over pre-recoded exponent limbs at an explicit window
/// width. [`pippenger_raw`] recodes then delegates here;
/// [`crate::batch::BatchDecryptCtx`] calls it directly so a whole flush of
/// requests shares one recoding of the fixed share vector.
pub fn pippenger_with_window<G: Group>(
    bases: &[G],
    exp_limbs: &[Vec<u64>],
    max_bits: usize,
    w: usize,
) -> G {
    let pairs: Vec<(&G, &Vec<u64>)> = bases
        .iter()
        .zip(exp_limbs)
        .filter(|(_, l)| bits_slice(l) > 0)
        .collect();
    let windows = max_bits.div_ceil(w);

    let mut acc = G::identity();
    let mut buckets: Vec<Option<G>> = vec![None; 1 << w];
    for win in (0..windows).rev() {
        for _ in 0..w {
            acc = acc.raw_double();
        }
        for slot in buckets.iter_mut() {
            *slot = None;
        }
        let bit_pos = win * w;
        for (b, limbs) in &pairs {
            let d = window(limbs, bit_pos, w);
            if d != 0 {
                buckets[d] = Some(match &buckets[d] {
                    Some(acc) => acc.raw_op(b),
                    None => **b,
                });
            }
        }
        // Running-sum trick: walking buckets high→low, `running` holds
        // B_j + B_{j+1} + …, and Σ running = Σ j·B_j.
        let mut running: Option<G> = None;
        let mut sum: Option<G> = None;
        for bucket in buckets[1..].iter().rev() {
            if let Some(b) = bucket {
                running = Some(match &running {
                    Some(r) => r.raw_op(b),
                    None => *b,
                });
            }
            if let Some(r) = &running {
                sum = Some(match &sum {
                    Some(s) => s.raw_op(r),
                    None => *r,
                });
            }
        }
        if let Some(s) = &sum {
            acc = acc.raw_op(s);
        }
    }
    acc
}

/// Size-adaptive dispatch: evaluate both engines' cost models at their own
/// best window for this batch shape and run the cheaper one. Deterministic
/// in `(n, bits)`, so repeated runs of a protocol make identical choices.
pub fn multiexp<G: Group>(bases: &[G], exps: &[G::Scalar]) -> G {
    assert_eq!(bases.len(), exps.len(), "bases/exps length mismatch");
    if bases.is_empty() {
        return G::identity();
    }
    let (exp_limbs, max_bits) = canonical_exponents::<G>(exps);
    let Some(max_bits) = max_bits else {
        return G::identity();
    };
    let nonzero = exp_limbs.iter().filter(|l| bits_slice(l) > 0).count();
    let ws = best_window(nonzero, max_bits, straus_cost);
    let wp = best_window(nonzero, max_bits, pippenger_cost);
    if pippenger_cost(nonzero, max_bits, wp) < straus_cost(nonzero, max_bits, ws) {
        pippenger_with_window(bases, &exp_limbs, max_bits, wp)
    } else {
        straus_with_window(bases, &exp_limbs, max_bits, ws)
    }
}

/// Recoded batch shape shared by [`multiexp`] and
/// [`crate::batch::BatchDecryptCtx`]: canonical limbs plus the highest set
/// bit (`None` when every exponent is zero). Public within the crate so the
/// batch context reuses the exact recoding the dispatcher would produce.
pub(crate) fn recode<G: Group>(exps: &[G::Scalar]) -> (Vec<Vec<u64>>, Option<usize>) {
    canonical_exponents::<G>(exps)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Cross-checks of straus vs naive on dense random exponents live in
    // `modgroup::tests` and `curve::tests`; the sparse/degenerate shapes
    // the zero-skipping paths introduce are covered here, plus the
    // pippenger/straus/naive differential grid.

    use crate::modgroup::{Mini1009, ModGroup};
    use dlr_math::FieldElement;
    use rand::SeedableRng;

    type MG = ModGroup<Mini1009>;
    type S = <MG as Group>::Scalar;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(17)
    }

    #[test]
    fn straus_matches_naive_on_sparse_exponents() {
        let mut r = rng();
        let bases: Vec<MG> = (0..6).map(|_| MG::random(&mut r)).collect();
        // Exponent vectors mixing zeros, tiny values and full-width values.
        let shapes: Vec<Vec<S>> = vec![
            vec![S::zero(); 6],
            {
                let mut e = vec![S::zero(); 6];
                e[3] = S::one();
                e
            },
            {
                let mut e = vec![S::zero(); 6];
                e[0] = S::from_u64(2);
                e[5] = S::from_u64(15);
                e
            },
            (0..6)
                .map(|i| if i % 2 == 0 { S::zero() } else { S::random(&mut r) })
                .collect(),
            vec![S::from_u64(1), S::zero(), S::from_u64(16), S::zero(), S::from_u64(17), S::zero()],
        ];
        for exps in shapes {
            assert_eq!(straus_raw(&bases, &exps), naive(&bases, &exps));
            assert_eq!(pippenger_raw(&bases, &exps), naive(&bases, &exps));
            assert_eq!(multiexp(&bases, &exps), naive(&bases, &exps));
        }
    }

    #[test]
    fn straus_all_zero_is_identity() {
        let mut r = rng();
        let bases: Vec<MG> = (0..4).map(|_| MG::random(&mut r)).collect();
        let exps = vec![S::zero(); 4];
        assert!(straus_raw(&bases, &exps).is_identity());
        assert!(pippenger_raw(&bases, &exps).is_identity());
        assert!(multiexp(&bases, &exps).is_identity());
    }

    #[test]
    fn straus_single_small_exponent() {
        let mut r = rng();
        let b = MG::random(&mut r);
        for e in 0..20u64 {
            let exps = [S::from_u64(e)];
            assert_eq!(straus_raw(&[b], &exps), naive(&[b], &exps));
            assert_eq!(pippenger_raw(&[b], &exps), naive(&[b], &exps));
        }
    }

    #[test]
    fn engines_agree_across_widths() {
        // ℓ grid from the issue: {1, 2, 3κ (κ=3 → 9), 64}, dense scalars.
        let mut r = rng();
        for n in [1usize, 2, 9, 64] {
            let bases: Vec<MG> = (0..n).map(|_| MG::random(&mut r)).collect();
            let exps: Vec<S> = (0..n).map(|_| S::random(&mut r)).collect();
            let expect = naive(&bases, &exps);
            assert_eq!(straus_raw(&bases, &exps), expect, "straus n={n}");
            assert_eq!(pippenger_raw(&bases, &exps), expect, "pippenger n={n}");
            assert_eq!(multiexp(&bases, &exps), expect, "dispatch n={n}");
        }
    }

    #[test]
    fn engines_agree_on_cofactor_points_with_saturated_exponents() {
        // Scalars are canonical mod r, but curve elements need not have
        // order r: cofactor-component points make every `exp mod r`
        // implicitly "above" the element order. Saturated `r − 1`
        // exponents additionally fill every window digit.
        use crate::params::{FrToy, Toy};
        let mut r = rng();
        type FrT = FrToy;
        for n in [1usize, 2, 9, 64] {
            let mut bases: Vec<crate::G<Toy>> =
                (0..n).map(|_| crate::G::random(&mut r)).collect();
            bases[0] = crate::util::out_of_subgroup_point::<Toy>();
            let exps: Vec<FrT> = (0..n)
                .map(|i| match i % 3 {
                    0 => -FrT::one(), // r − 1
                    1 => FrT::zero(),
                    _ => FrT::random(&mut r),
                })
                .collect();
            let expect = naive(&bases, &exps);
            assert_eq!(straus_raw(&bases, &exps), expect, "straus n={n}");
            assert_eq!(pippenger_raw(&bases, &exps), expect, "pippenger n={n}");
            assert_eq!(multiexp(&bases, &exps), expect, "dispatch n={n}");
            // The curve group overrides product_of_powers with the wNAF
            // engine — the cofactor/saturated shapes here are exactly the
            // ones where signed tables can hit infinity entries.
            assert_eq!(
                crate::G::<Toy>::product_of_powers(&bases, &exps),
                expect,
                "wnaf n={n}"
            );
        }
    }

    #[test]
    fn explicit_windows_all_agree() {
        let mut r = rng();
        let bases: Vec<MG> = (0..7).map(|_| MG::random(&mut r)).collect();
        let exps: Vec<S> = (0..7).map(|_| S::random(&mut r)).collect();
        let expect = naive(&bases, &exps);
        let (limbs, max_bits) = canonical_exponents::<MG>(&exps);
        let max_bits = max_bits.unwrap();
        for w in 1..=8 {
            assert_eq!(
                straus_with_window(&bases, &limbs, max_bits, w),
                expect,
                "w={w}"
            );
        }
    }

    #[test]
    fn cost_models_pick_sane_windows() {
        // Few bases: Straus must not pay huge tables.
        assert!(best_window(1, 10, straus_cost) <= 2);
        // Wide batches push both engines to wider windows.
        assert!(best_window(1500, 256, pippenger_cost) >= 6);
        // Dispatcher prefers Pippenger for wide batches, Straus for narrow.
        let (ns, nb) = (4usize, 256usize);
        let ws = best_window(ns, nb, straus_cost);
        let wp = best_window(ns, nb, pippenger_cost);
        assert!(straus_cost(ns, nb, ws) <= pippenger_cost(ns, nb, wp));
        let (ns, nb) = (1500usize, 256usize);
        let ws = best_window(ns, nb, straus_cost);
        let wp = best_window(ns, nb, pippenger_cost);
        assert!(pippenger_cost(ns, nb, wp) < straus_cost(ns, nb, ws));
    }
}
