//! Small shared helpers.

use dlr_math::PrimeField;

/// The modulus of a prime field as little-endian `u64` limbs — used as an
/// exponent for subgroup checks and the Miller loop bit pattern.
pub fn field_modulus_limbs<F: PrimeField>() -> Vec<u64> {
    let mut be = F::modulus_be_bytes();
    be.reverse();
    be.chunks(8)
        .map(|ch| {
            let mut b = [0u8; 8];
            b[..ch.len()].copy_from_slice(ch);
            u64::from_le_bytes(b)
        })
        .collect()
}

/// Deterministically find an on-curve point **outside** the order-`r`
/// subgroup (test-only): scan small `x`, lift to the curve via the
/// uncompressed wire format (which validates the curve equation but not
/// subgroup membership), and keep the first non-identity point that fails
/// [`Group::is_in_subgroup`].
#[cfg(test)]
pub(crate) fn out_of_subgroup_point<P: crate::params::SsParams>() -> crate::curve::G<P> {
    use crate::traits::Group;
    use dlr_math::FieldElement;
    let mut x = P::Fp::one();
    loop {
        let rhs = x.square() * x + x;
        if let Some(y) = rhs.sqrt() {
            let mut bytes = vec![4u8];
            bytes.extend_from_slice(&x.to_bytes_be());
            bytes.extend_from_slice(&y.to_bytes_be());
            if let Some(pt) = crate::curve::G::<P>::from_bytes(&bytes) {
                if !pt.is_identity() && !pt.is_in_subgroup() {
                    return pt;
                }
            }
        }
        x += P::Fp::one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FrToy;

    #[test]
    fn limbs_match_modulus() {
        assert_eq!(field_modulus_limbs::<FrToy>(), vec![0x5ed5e420ff583487]);
    }
}
