//! Small shared helpers.

use dlr_math::PrimeField;

/// The modulus of a prime field as little-endian `u64` limbs — used as an
/// exponent for subgroup checks and the Miller loop bit pattern.
pub fn field_modulus_limbs<F: PrimeField>() -> Vec<u64> {
    let mut be = F::modulus_be_bytes();
    be.reverse();
    be.chunks(8)
        .map(|ch| {
            let mut b = [0u8; 8];
            b[..ch.len()].copy_from_slice(ch);
            u64::from_le_bytes(b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FrToy;

    #[test]
    fn limbs_match_modulus() {
        assert_eq!(field_modulus_limbs::<FrToy>(), vec![0x5ed5e420ff583487]);
    }
}
