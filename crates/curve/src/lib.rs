#![warn(missing_docs)]
//! # dlr-curve — symmetric (Type-1) pairing groups from scratch
//!
//! The bilinear-group substrate of the DLR workspace: a supersingular curve
//! `E : y² = x³ + x` over `F_p` (`p ≡ 3 mod 4`, embedding degree 2) with the
//! distortion-map-modified Tate pairing, giving exactly the symmetric map
//! `e : G × G → GT` that *Akavia–Goldwasser–Hazay (PODC'12)* assume from
//! their parameter generator `G(1^n)`.
//!
//! * [`traits`] — the [`Group`] / [`Pairing`] abstractions (multiplicative
//!   notation, matching the paper);
//! * [`params`] — parameter sets [`Toy`],
//!   [`Ss512`], [`Ss768`],
//!   [`Ss1024`], each of which *is* a [`Pairing`];
//! * [`curve`] — the source group [`G`] (Jacobian arithmetic,
//!   hash-to-curve, unknown-dlog sampling);
//! * [`fixedbase`] — [`FixedBase`]: precomputed comb tables for the
//!   fixed-base exponentiations of DLR encryption (`g^t`, `z^t`), plus the
//!   shareable lazy cell [`LazyFixedBase`];
//! * [`gt`] — the target group [`Gt`] `⊂ F_{p²}*`;
//! * [`pairing`] — affine Miller loop + final exponentiation, plus the
//!   batched [`pairing::pairing_product`] (shared squaring chain, single
//!   final exponentiation);
//! * [`prepared`] — [`PreparedPoint`]: cache the Miller line coefficients
//!   of a fixed first argument and replay them per second argument;
//! * [`parallel`] — opt-in scoped-thread fan-out for batched pairings with
//!   exact counter merging;
//! * [`multiexp`] — size-adaptive multi-exponentiation (Pippenger bucket
//!   windows, Straus interleaving below the crossover);
//! * [`batch`] — [`BatchDecryptCtx`]: per-key shared exponent recoding and
//!   engine dispatch for cross-request batched decryption, op-count
//!   identical to the sequential path;
//! * [`modgroup`] — tiny-order groups for exhaustive entropy experiments;
//! * [`counters`] — thread-local operation counts backing the efficiency
//!   experiments.
//!
//! ## Example
//!
//! ```
//! use dlr_curve::{Group, Pairing};
//! use dlr_curve::params::Toy;
//! use dlr_math::FieldElement;
//!
//! type G = <Toy as Pairing>::G1; // = G2 on this symmetric (Type-1) curve
//! let mut rng = rand::thread_rng();
//! let a = <Toy as Pairing>::Scalar::random(&mut rng);
//! // e(g^a, g) = e(g, g)^a
//! let lhs = Toy::pair(&G::generator().pow(&a), &G::generator());
//! assert_eq!(lhs, Toy::pair_generators().pow(&a));
//! ```

pub mod batch;
pub mod counters;
pub mod curve;
pub mod fixedbase;
pub mod gt;
pub mod modgroup;
pub mod multiexp;
pub mod pairing;
pub mod parallel;
pub mod params;
pub mod prepared;
pub mod traits;
mod util;

pub use batch::BatchDecryptCtx;
pub use curve::G;
pub use fixedbase::{FixedBase, LazyFixedBase};
pub use gt::Gt;
pub use parallel::{parallel_threads, set_parallel_threads};
pub use params::{ParamCaches, Ss1024, Ss512, Ss768, SsParams, Toy};
pub use prepared::{LazyPreparedBatch, PreparedPoint};
pub use traits::{Group, GroupKind, Pairing};
