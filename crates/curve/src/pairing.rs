//! The modified Tate pairing `ê(P, Q) = e_r(P, φ(Q))^{(p²−1)/r}`.
//!
//! `E : y² = x³ + x` over `F_p` with `p ≡ 3 (mod 4)` is supersingular with
//! distortion map `φ(x, y) = (−x, i·y)` into `E(F_{p²})`. Pairing `P`
//! against the distorted image of `Q` yields a **symmetric, non-degenerate**
//! bilinear map `G × G → GT` — the Type-1 map the paper's constructions are
//! written for.
//!
//! Implementation notes:
//! * the Miller loop runs in affine coordinates over `F_p` only — the
//!   distorted point's x-coordinate `−x_Q` lies in the base field, so each
//!   line evaluation is `(λ(x_Q + x_T) − y_T) + y_Q·i` with all arithmetic
//!   in `F_p` (two `F_p` muls) and only the accumulator living in `F_{p²}`;
//! * vertical lines evaluate into `F_p*`, which the final exponentiation
//!   `z ↦ z^{(p−1)·c}` kills (`z^{p−1} = 1` for `z ∈ F_p*`) — standard
//!   denominator elimination;
//! * the final exponentiation uses Frobenius: `z^{p−1} = z̄ · z^{−1}`,
//!   then one `pow` by the cofactor `c = (p+1)/r`.

use crate::counters;
use crate::curve::G;
use crate::gt::Gt;
use crate::params::SsParams;
use crate::traits::{Group, Pairing};
use dlr_math::{FieldElement, Fp2, PrimeField};

/// Affine point (never infinity) used inside the Miller loop.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Affine<F> {
    pub(crate) x: F,
    pub(crate) y: F,
}

/// One emitted operation of a Miller chain.
///
/// The doubling/addition schedule for a fixed first argument `P` depends
/// only on `P` and the bits of `r` — never on `Q` — so the chain can be
/// walked once, its line coefficients cached, and replayed against many
/// second arguments (see [`crate::prepared::PreparedPoint`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MillerOp<F> {
    /// Square the `F_{p²}` accumulator.
    Square,
    /// Multiply the accumulator by the line
    /// `l(φ(Q)) = (λ·x_Q + θ) + y_Q·i` with `θ = λ·x_T − y_T`.
    Line {
        /// Slope of the tangent/chord at the current `T`.
        lambda: F,
        /// Precombined intercept `λ·x_T − y_T`.
        theta: F,
    },
}

impl<F: PrimeField> MillerOp<F> {
    /// Apply this operation to the accumulator for the distorted point
    /// `φ(Q) = (−x_Q, i·y_Q)`. Line evaluations cost one `F_p`
    /// multiplication plus the `F_{p²}` accumulator multiply.
    #[inline]
    pub(crate) fn apply(&self, f: &mut Fp2<F>, xq: &F, yq: &F) {
        match self {
            MillerOp::Square => *f = f.square(),
            MillerOp::Line { lambda, theta } => {
                // Fused multiply-add: λ·x_Q + θ pays one Montgomery
                // reduction (same canonical value as the eager form).
                *f *= Fp2::new(lambda.mul_add(xq, theta), *yq);
            }
        }
    }
}

/// Line coefficients for one doubling step, and `2T`.
///
/// `None` coefficients mean a vertical tangent (2-torsion `T`): the line
/// evaluates into `F_p*`, which the final exponentiation kills
/// (denominator elimination), so no accumulator work is emitted.
fn double_coeffs<F: PrimeField>(t: Affine<F>) -> (Option<(F, F)>, Option<Affine<F>>) {
    if t.y.is_zero() {
        return (None, None);
    }
    let xx = t.x.square();
    let three_x2_plus_1 = xx.double() + xx + F::one();
    let lambda = three_x2_plus_1 * t.y.double().inverse().expect("y != 0");
    let x3 = lambda.square() - t.x.double();
    let y3 = lambda.mul_add(&(t.x - x3), &(-t.y));
    // line through (T, T): λ·x_Q + (λ·x_T − y_T) is the F_p part at φ(Q)
    let theta = lambda.mul_add(&t.x, &(-t.y));
    (Some((lambda, theta)), Some(Affine { x: x3, y: y3 }))
}

/// Line coefficients for one addition step, and `T + P`.
fn add_coeffs<F: PrimeField>(
    t: Affine<F>,
    p: Affine<F>,
) -> (Option<(F, F)>, Option<Affine<F>>) {
    if t.x == p.x {
        if t.y == p.y {
            return double_coeffs(t);
        }
        // T = −P: the chord is vertical — subfield factor only.
        return (None, None);
    }
    let lambda = (p.y - t.y) * (p.x - t.x).inverse().expect("x1 != x2");
    let x3 = lambda.square() - t.x - p.x;
    let y3 = lambda.mul_add(&(t.x - x3), &(-t.y));
    let theta = lambda.mul_add(&t.x, &(-t.y));
    (Some((lambda, theta)), Some(Affine { x: x3, y: y3 }))
}

/// Walk the Miller doubling/addition chain of `p` over the bits of the
/// subgroup order `r`, emitting every accumulator operation in order.
///
/// Both the direct [`miller_loop`] and
/// [`PreparedPoint::prepare`](crate::prepared::PreparedPoint::prepare) are
/// thin wrappers over this walker, so a prepared evaluation replays the
/// *exact* operation sequence of a direct pairing by construction.
pub(crate) fn miller_chain<P: SsParams>(
    p: Affine<P::Fp>,
    mut visit: impl FnMut(MillerOp<P::Fp>),
) {
    let r_limbs = crate::util::field_modulus_limbs::<P::Fr>();
    let mut nbits = 0u32;
    for (i, w) in r_limbs.iter().enumerate() {
        if *w != 0 {
            nbits = i as u32 * 64 + (64 - w.leading_zeros());
        }
    }

    let mut t: Option<Affine<P::Fp>> = Some(p);
    let mut i = nbits - 1;
    while i > 0 {
        i -= 1;
        visit(MillerOp::Square);
        if let Some(cur) = t {
            let (coeffs, next) = double_coeffs(cur);
            if let Some((lambda, theta)) = coeffs {
                visit(MillerOp::Line { lambda, theta });
            }
            t = next;
        }
        if (r_limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1 {
            if let Some(cur) = t {
                let (coeffs, next) = add_coeffs(cur, p);
                if let Some((lambda, theta)) = coeffs {
                    visit(MillerOp::Line { lambda, theta });
                }
                t = next;
            } else {
                // T was the point at infinity: O + P = P, trivial function.
                t = Some(p);
            }
        }
    }
}

/// Walk the Miller chain of `p` with **batched inversions**: the running
/// point advances in Jacobian coordinates (no per-step inversion), then
/// every intermediate is normalized and every slope denominator inverted
/// with two [`dlr_math::batch_inverse`] calls — two field inversions total
/// instead of one per doubling/addition step.
///
/// The normalized intermediates are canonical affine coordinates and every
/// degeneracy of the reference walker (vertical tangent/chord → no line,
/// running point to infinity — the final addition of any in-subgroup chain
/// lands on `T = −P`) is mirrored case for case, so the emitted `(λ, θ)`
/// sequence is **bit-identical** to [`miller_chain`]'s for every input.
/// `None` is unreachable in practice (a logged step can never have a zero
/// denominator) and only kept so callers retain the reference fallback.
pub(crate) fn miller_chain_batched<P: SsParams>(
    p: Affine<P::Fp>,
) -> Option<Vec<MillerOp<P::Fp>>> {
    let r_limbs = crate::util::field_modulus_limbs::<P::Fr>();
    let mut nbits = 0u32;
    for (i, w) in r_limbs.iter().enumerate() {
        if *w != 0 {
            nbits = i as u32 * 64 + (64 - w.leading_zeros());
        }
    }

    /// What a chain slot multiplies into the accumulator: nothing (the
    /// squaring is implicit per bit), a tangent line at the logged step, or
    /// a chord line through the logged step and the base point.
    enum Slot {
        Square,
        Tangent(usize),
        Chord(usize),
    }

    // Jacobian running point (x, y) = (X/Z², Y/Z³); `pre` logs the
    // coordinates *before* each line-emitting op.
    let (mut tx, mut ty, mut tz) = (p.x, p.y, P::Fp::one());
    let mut infinity = false;
    let mut pre: Vec<(P::Fp, P::Fp, P::Fp)> = Vec::new();
    let mut slots: Vec<Slot> = Vec::new();
    let mut i = nbits - 1;
    while i > 0 {
        i -= 1;
        slots.push(Slot::Square);
        if !infinity {
            if ty.is_zero() {
                // Vertical tangent (2-torsion): subfield factor only, and
                // the running point doubles to infinity.
                infinity = true;
            } else {
                slots.push(Slot::Tangent(pre.len()));
                pre.push((tx, ty, tz));
                // Doubling on y² = x³ + x (a = 1): M = 3X² + Z⁴, S = 4XY².
                let xx = tx.square();
                let zz = tz.square();
                let m = xx.double() + xx + zz.square();
                let yy = ty.square();
                let s = (tx * yy).double().double();
                let x3 = m.square() - s.double();
                let eight_y4 = yy.square().double().double().double();
                let y3 = m * (s - x3) - eight_y4;
                let z3 = (ty * tz).double();
                tx = x3;
                ty = y3;
                tz = z3;
            }
        }
        if (r_limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1 {
            if infinity {
                // O + P = P, trivial function.
                tx = p.x;
                ty = p.y;
                tz = P::Fp::one();
                infinity = false;
            } else {
                let zz = tz.square();
                let u2 = p.x * zz;
                if u2 == tx {
                    // Same x-coordinate: either T = P (tangent case) or
                    // T = −P (vertical chord — the final addition of every
                    // in-subgroup chain).
                    let s2 = p.y * zz * tz;
                    if s2 == ty && !ty.is_zero() {
                        slots.push(Slot::Tangent(pre.len()));
                        pre.push((tx, ty, tz));
                        let xx = tx.square();
                        let m = xx.double() + xx + zz.square();
                        let yy = ty.square();
                        let s = (tx * yy).double().double();
                        let x3 = m.square() - s.double();
                        let eight_y4 = yy.square().double().double().double();
                        let y3 = m * (s - x3) - eight_y4;
                        let z3 = (ty * tz).double();
                        tx = x3;
                        ty = y3;
                        tz = z3;
                    } else {
                        // Vertical chord (or 2-torsion tangent): no line,
                        // running point to infinity.
                        infinity = true;
                    }
                } else {
                    slots.push(Slot::Chord(pre.len()));
                    pre.push((tx, ty, tz));
                    let s2 = p.y * zz * tz;
                    let h = u2 - tx;
                    let r = s2 - ty;
                    let hh = h.square();
                    let hhh = h * hh;
                    let v = tx * hh;
                    let x3 = r.square() - hhh - v.double();
                    let y3 = r * (v - x3) - ty * hhh;
                    let z3 = tz * h;
                    tx = x3;
                    ty = y3;
                    tz = z3;
                }
            }
        }
    }

    // One batched inversion normalizes every logged point ...
    let zs: Vec<P::Fp> = pre.iter().map(|t| t.2).collect();
    let zinv = dlr_math::batch_inverse(&zs)?;
    let aff: Vec<Affine<P::Fp>> = pre
        .iter()
        .zip(&zinv)
        .map(|((x, y, _), zi)| {
            let zi2 = zi.square();
            Affine {
                x: *x * zi2,
                y: *y * zi2 * *zi,
            }
        })
        .collect();
    // ... and a second one inverts every slope denominator.
    let denoms: Vec<P::Fp> = slots
        .iter()
        .filter_map(|slot| match slot {
            Slot::Square => None,
            Slot::Tangent(k) => Some(aff[*k].y.double()),
            Slot::Chord(k) => Some(p.x - aff[*k].x),
        })
        .collect();
    let dinv = dlr_math::batch_inverse(&denoms)?;

    let mut dinv_iter = dinv.into_iter();
    let mut ops = Vec::with_capacity(slots.len());
    for slot in &slots {
        ops.push(match slot {
            Slot::Square => MillerOp::Square,
            Slot::Tangent(k) => {
                let t = aff[*k];
                let xx = t.x.square();
                let lambda = (xx.double() + xx + P::Fp::one()) * dinv_iter.next()?;
                MillerOp::Line {
                    lambda,
                    theta: lambda.mul_add(&t.x, &(-t.y)),
                }
            }
            Slot::Chord(k) => {
                let t = aff[*k];
                let lambda = (p.y - t.y) * dinv_iter.next()?;
                MillerOp::Line {
                    lambda,
                    theta: lambda.mul_add(&t.x, &(-t.y)),
                }
            }
        });
    }
    Some(ops)
}

/// Miller loop `f_{r,P}(φ(Q))` over the bits of the subgroup order `r`.
fn miller_loop<P: SsParams>(p: Affine<P::Fp>, q: Affine<P::Fp>) -> Fp2<P::Fp> {
    let mut f = Fp2::<P::Fp>::one();
    miller_chain::<P>(p, |op| op.apply(&mut f, &q.x, &q.y));
    f
}

/// Final exponentiation `z ↦ z^{(p²−1)/r} = (z̄ / z)^c` mapping into `μ_r`.
pub fn final_exponentiation<P: SsParams>(z: Fp2<P::Fp>) -> Gt<P> {
    debug_assert!(!z.is_zero());
    // z^{p−1} = conj(z) · z^{−1}  (Frobenius on F_{p²} is conjugation)
    let u = z.conjugate() * z.inverse().expect("nonzero");
    // now raise to the cofactor c = (p+1)/r
    let v = u.pow_vartime(P::COFACTOR);
    Gt::from_unitary(v)
}

/// Batch final exponentiation: map a vector of Miller outputs into `μ_r`
/// with **one** `F_{p²}` inversion via Montgomery's simultaneous-inversion
/// trick ([`dlr_math::batch_inverse`]); the per-element cofactor powers are
/// unavoidable (distinct bases).
///
/// Zero entries map to the identity — the same out-of-subgroup guard as
/// [`tate_pairing`], and the sentinel [`crate::prepared::PreparedPoint`]
/// uses for identity-slot evaluations.
pub fn batch_final_exponentiation<P: SsParams>(zs: &[Fp2<P::Fp>]) -> Vec<Gt<P>> {
    let nonzero: Vec<Fp2<P::Fp>> = zs.iter().filter(|z| !z.is_zero()).copied().collect();
    let inverses = dlr_math::batch_inverse(&nonzero).expect("zeros filtered out");
    let mut inv_iter = inverses.into_iter();
    zs.iter()
        .map(|z| {
            if z.is_zero() {
                Gt::identity()
            } else {
                let u = z.conjugate() * inv_iter.next().expect("one inverse per nonzero");
                Gt::from_unitary(u.pow_vartime(P::COFACTOR))
            }
        })
        .collect()
}

/// The pairing product `∏ ê(P_i, Q_i)` with a **shared squaring chain and
/// a single final exponentiation**.
///
/// All constituent Miller loops follow the same `r`-bit schedule, so their
/// accumulators can be fused: one `F_{p²}` squaring per bit serves every
/// pair, and the final exponentiation (a homomorphism) is applied once to
/// the fused product. Bumps the `pairings` counter once per constituent —
/// the work performed is equivalent, just de-duplicated.
///
/// Pairs with an identity slot contribute the identity factor. If a fused
/// Miller value vanishes (only possible for inputs outside the order-`r`
/// subgroup), the product falls back to per-element evaluation so the
/// result always equals `∏ tate_pairing(P_i, Q_i)` exactly.
pub fn pairing_product<P: SsParams>(pairs: &[(G<P>, G<P>)]) -> Gt<P> {
    for _ in pairs {
        counters::count_pairing();
    }
    // Pairs with an identity slot contribute e(·, O) = e(O, ·) = 1.
    #[allow(clippy::type_complexity)]
    let affine: Vec<(Affine<P::Fp>, Affine<P::Fp>)> = pairs
        .iter()
        .filter_map(|(p, q)| match (p.to_affine(), q.to_affine()) {
            (Some((px, py)), Some((qx, qy))) => {
                Some((Affine { x: px, y: py }, Affine { x: qx, y: qy }))
            }
            _ => None,
        })
        .collect();
    if affine.is_empty() {
        return Gt::identity();
    }

    let r_limbs = crate::util::field_modulus_limbs::<P::Fr>();
    let mut nbits = 0u32;
    for (i, w) in r_limbs.iter().enumerate() {
        if *w != 0 {
            nbits = i as u32 * 64 + (64 - w.leading_zeros());
        }
    }

    let mut f = Fp2::<P::Fp>::one();
    let mut ts: Vec<Option<Affine<P::Fp>>> = affine.iter().map(|(p, _)| Some(*p)).collect();
    let mut i = nbits - 1;
    while i > 0 {
        i -= 1;
        f = f.square(); // one squaring serves every constituent
        for (k, (p, q)) in affine.iter().enumerate() {
            if let Some(cur) = ts[k] {
                let (coeffs, next) = double_coeffs(cur);
                if let Some((lambda, theta)) = coeffs {
                    (MillerOp::Line { lambda, theta }).apply(&mut f, &q.x, &q.y);
                }
                ts[k] = next;
            }
            if (r_limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1 {
                if let Some(cur) = ts[k] {
                    let (coeffs, next) = add_coeffs(cur, *p);
                    if let Some((lambda, theta)) = coeffs {
                        (MillerOp::Line { lambda, theta }).apply(&mut f, &q.x, &q.y);
                    }
                    ts[k] = next;
                } else {
                    ts[k] = Some(*p);
                }
            }
        }
    }

    if f.is_zero() {
        // Some constituent Miller value vanished (out-of-subgroup input):
        // recover exact per-element semantics. Pairings were counted above.
        return affine.iter().fold(Gt::identity(), |acc, (p, q)| {
            let fi = miller_loop::<P>(*p, *q);
            if fi.is_zero() {
                acc
            } else {
                acc.raw_op(&final_exponentiation::<P>(fi))
            }
        });
    }
    final_exponentiation::<P>(f)
}

/// The modified Tate pairing `ê : G × G → GT`.
pub fn tate_pairing<P: SsParams>(p: &G<P>, q: &G<P>) -> Gt<P> {
    counters::count_pairing();
    let (pa, qa) = match (p.to_affine(), q.to_affine()) {
        (Some(pa), Some(qa)) => (pa, qa),
        // e(O, ·) = e(·, O) = 1
        _ => return Gt::identity(),
    };
    let f = miller_loop::<P>(
        Affine { x: pa.0, y: pa.1 },
        Affine { x: qa.0, y: qa.1 },
    );
    if f.is_zero() {
        // Can only happen for inputs outside the order-r subgroup.
        return Gt::identity();
    }
    final_exponentiation::<P>(f)
}

impl<P: SsParams> Pairing for P {
    type Scalar = P::Fr;
    type G1 = G<P>;
    type G2 = G<P>;
    type Gt = Gt<P>;
    type Prepared = crate::prepared::PreparedPoint<P>;
    const NAME: &'static str = P::NAME;

    fn pair(p: &Self::G1, q: &Self::G2) -> Self::Gt {
        tate_pairing::<P>(p, q)
    }

    fn pair_generators() -> Self::Gt {
        // Gt::generator() caches e(g, g).
        Gt::<P>::generator()
    }

    fn prepare(p: &Self::G1) -> Self::Prepared {
        crate::prepared::PreparedPoint::prepare(p)
    }

    fn pair_prepared(prep: &Self::Prepared, q: &Self::G2) -> Self::Gt {
        prep.pair(q)
    }

    fn multi_pair_prepared(prep: &Self::Prepared, qs: &[Self::G2]) -> Vec<Self::Gt> {
        prep.multi_pairing(qs)
    }

    fn pairing_product(pairs: &[(Self::G1, Self::G2)]) -> Self::Gt {
        pairing_product::<P>(pairs)
    }

    // The Type-1 map is symmetric — ê(P, Q) = ê(Q, P) exactly (same
    // canonical Gt element) — so a prepared *second* slot reuses the
    // first-slot machinery with the arguments swapped.
    type PreparedQ = crate::prepared::PreparedPoint<P>;

    fn prepare_q(q: &Self::G2) -> Self::PreparedQ {
        crate::prepared::PreparedPoint::prepare(q)
    }

    fn pair_prepared_q(p: &Self::G1, prep: &Self::PreparedQ) -> Self::Gt {
        prep.pair(p)
    }

    fn multi_pair_prepared_q(p: &Self::G1, preps: &[Self::PreparedQ]) -> Vec<Self::Gt> {
        crate::prepared::multi_pairing_many(preps, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Ss512, Toy};
    use rand::SeedableRng;

    type Fr = <Toy as SsParams>::Fr;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn non_degenerate_on_generator() {
        let g = G::<Toy>::generator();
        let e = Toy::pair(&g, &g);
        assert!(!e.is_identity());
        assert!(e.is_in_subgroup());
    }

    #[test]
    fn bilinearity() {
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let q = G::<Toy>::random(&mut r);
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        let lhs = Toy::pair(&p.pow(&a), &q.pow(&b));
        let rhs = Toy::pair(&p, &q).pow(&(a * b));
        assert_eq!(lhs, rhs);
        // additivity in the first slot
        let p2 = G::<Toy>::random(&mut r);
        assert_eq!(
            Toy::pair(&p.op(&p2), &q),
            Toy::pair(&p, &q).op(&Toy::pair(&p2, &q))
        );
    }

    #[test]
    fn symmetry() {
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let q = G::<Toy>::random(&mut r);
        assert_eq!(Toy::pair(&p, &q), Toy::pair(&q, &p));
    }

    #[test]
    fn identity_slots() {
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let id = G::<Toy>::identity();
        assert!(Toy::pair(&p, &id).is_identity());
        assert!(Toy::pair(&id, &p).is_identity());
    }

    #[test]
    fn inverse_slot() {
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let q = G::<Toy>::random(&mut r);
        assert_eq!(Toy::pair(&p.inverse(), &q), Toy::pair(&p, &q).inverse());
    }

    #[test]
    fn pair_generators_cached_consistent() {
        let direct = Toy::pair(&G::<Toy>::generator(), &G::<Toy>::generator());
        assert_eq!(Toy::pair_generators(), direct);
        assert_eq!(Gt::<Toy>::generator(), direct);
    }

    #[test]
    fn pairing_counter_bumps() {
        let g = G::<Toy>::generator();
        let (_, report) = crate::counters::measure(|| {
            let _ = Toy::pair(&g, &g);
        });
        assert_eq!(report.pairings, 1);
    }

    #[test]
    fn ss512_bilinearity_smoke() {
        let mut r = rng();
        let g = G::<Ss512>::generator();
        let a = <Ss512 as SsParams>::Fr::random(&mut r);
        let lhs = Ss512::pair(&g.pow(&a), &g);
        let rhs = Ss512::pair(&g, &g).pow(&a);
        assert_eq!(lhs, rhs);
        assert!(!lhs.is_identity());
    }

    /// Reference for the product tests: fold per-element pairings with the
    /// uninstrumented op, as the default trait implementation does.
    fn product_reference(pairs: &[(G<Toy>, G<Toy>)]) -> Gt<Toy> {
        pairs
            .iter()
            .fold(Gt::identity(), |acc, (p, q)| acc.raw_op(&tate_pairing::<Toy>(p, q)))
    }

    #[test]
    fn pairing_product_matches_per_element() {
        let mut r = rng();
        for n in [0usize, 1, 2, 3, 7] {
            let pairs: Vec<(G<Toy>, G<Toy>)> = (0..n)
                .map(|_| (G::<Toy>::random(&mut r), G::<Toy>::random(&mut r)))
                .collect();
            assert_eq!(pairing_product::<Toy>(&pairs), product_reference(&pairs), "n={n}");
        }
    }

    #[test]
    fn pairing_product_identity_slots() {
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let q = G::<Toy>::random(&mut r);
        let id = G::<Toy>::identity();
        let pairs = [(p, id), (id, q), (p, q), (id, id)];
        assert_eq!(pairing_product::<Toy>(&pairs), product_reference(&pairs));
        assert!(pairing_product::<Toy>(&[(p, id), (id, q)]).is_identity());
    }

    #[test]
    fn pairing_product_out_of_subgroup_fallback() {
        let mut r = rng();
        let oos = crate::util::out_of_subgroup_point::<Toy>();
        assert!(!oos.is_in_subgroup());
        let p = G::<Toy>::random(&mut r);
        let q = G::<Toy>::random(&mut r);
        // Products mixing subgroup and non-subgroup slots in both
        // positions must still equal the per-element fold exactly.
        for pairs in [
            vec![(oos, q)],
            vec![(p, oos)],
            vec![(oos, oos), (p, q)],
            vec![(p, q), (oos, q), (q, p)],
        ] {
            assert_eq!(pairing_product::<Toy>(&pairs), product_reference(&pairs));
        }
    }

    #[test]
    fn pairing_product_counter_semantics() {
        let mut r = rng();
        let pairs: Vec<(G<Toy>, G<Toy>)> = (0..4)
            .map(|_| (G::<Toy>::random(&mut r), G::<Toy>::random(&mut r)))
            .collect();
        let (_, ops) = crate::counters::measure(|| pairing_product::<Toy>(&pairs));
        assert_eq!(ops.pairings, 4);
        assert_eq!(ops.gt_op, 0);
        assert_eq!(ops.gt_pow, 0);
    }

    #[test]
    fn batch_final_exponentiation_matches_single() {
        let mut r = rng();
        let g = G::<Toy>::generator();
        // Miller values of real pairings plus a zero sentinel.
        let mut zs = Vec::new();
        for _ in 0..5 {
            let p = G::<Toy>::random(&mut r);
            let q = G::<Toy>::random(&mut r);
            let (pa, qa) = (p.to_affine().unwrap(), q.to_affine().unwrap());
            zs.push(miller_loop::<Toy>(
                Affine { x: pa.0, y: pa.1 },
                Affine { x: qa.0, y: qa.1 },
            ));
        }
        zs.push(Fp2::zero());
        let batched = batch_final_exponentiation::<Toy>(&zs);
        for (z, e) in zs.iter().zip(&batched) {
            if z.is_zero() {
                assert!(e.is_identity());
            } else {
                assert_eq!(*e, final_exponentiation::<Toy>(*z));
            }
        }
        let _ = g;
    }

    #[test]
    fn batched_chain_walker_is_bit_identical() {
        let mut r = rng();
        for _ in 0..6 {
            let p = G::<Toy>::random(&mut r);
            let (x, y) = p.to_affine().unwrap();
            let a = Affine { x, y };
            let mut reference = Vec::new();
            miller_chain::<Toy>(a, |op| reference.push(op));
            let batched = miller_chain_batched::<Toy>(a).expect("subgroup point");
            assert_eq!(batched, reference);
        }
        // Out-of-subgroup point: exercises the vertical/degenerate paths.
        let oos = crate::util::out_of_subgroup_point::<Toy>();
        let (x, y) = oos.to_affine().unwrap();
        let a = Affine { x, y };
        let mut reference = Vec::new();
        miller_chain::<Toy>(a, |op| reference.push(op));
        assert_eq!(miller_chain_batched::<Toy>(a).unwrap(), reference);
        // SS512 once (slow chain, still exact).
        let g = G::<Ss512>::generator();
        let (x, y) = g.to_affine().unwrap();
        let a = Affine { x, y };
        let mut reference = Vec::new();
        miller_chain::<Ss512>(a, |op| reference.push(op));
        assert_eq!(miller_chain_batched::<Ss512>(a).unwrap(), reference);
    }

    // Manual micro-benchmark over the arithmetic stack (field, tower,
    // sampling, pairing atoms). Min-of-N loops instead of criterion —
    // the single-core CI box's ±25% run-to-run variance drowns its
    // statistics; DESIGN.md §4 "Arithmetic floor" cites these numbers:
    //   cargo test --release -p dlr-curve --lib -- --ignored micro_timings --nocapture
    #[test]
    #[ignore]
    fn micro_timings() {
        use dlr_math::Fp2;
        use std::time::Instant;

        fn best_of<F: FnMut() -> u64>(mut f: F) -> u64 {
            (0..5).map(|_| f()).min().unwrap()
        }

        fn fp2_suite<F: dlr_math::PrimeField>(label: &str, iters: u32) {
            let mut r = rand::rngs::StdRng::seed_from_u64(3);
            let a: Fp2<F> = Fp2::random(&mut r);
            let b: Fp2<F> = Fp2::random(&mut r);
            let lazy = best_of(|| {
                let mut acc = a;
                let t = Instant::now();
                for _ in 0..iters {
                    acc *= b;
                }
                let ns = t.elapsed().as_nanos() as u64 / iters as u64;
                std::hint::black_box(acc);
                ns
            });
            let eager = best_of(|| {
                let mut acc = a;
                let t = Instant::now();
                for _ in 0..iters {
                    acc = acc.mul_reduced_reference(&b);
                }
                let ns = t.elapsed().as_nanos() as u64 / iters as u64;
                std::hint::black_box(acc);
                ns
            });
            let sq_lazy = best_of(|| {
                let mut acc = a;
                let t = Instant::now();
                for _ in 0..iters {
                    acc = acc.square();
                }
                let ns = t.elapsed().as_nanos() as u64 / iters as u64;
                std::hint::black_box(acc);
                ns
            });
            let sq_eager = best_of(|| {
                let mut acc = a;
                let t = Instant::now();
                for _ in 0..iters {
                    acc = acc.mul_reduced_reference(&acc.clone());
                }
                let ns = t.elapsed().as_nanos() as u64 / iters as u64;
                std::hint::black_box(acc);
                ns
            });
            eprintln!(
                "{label}: fp2 mul lazy={lazy}ns eager={eager}ns | sq lazy={sq_lazy}ns sq-as-mul={sq_eager}ns"
            );
        }

        fn pairing_suite<P: SsParams>(label: &str, iters: u32) {
            let mut r = rand::rngs::StdRng::seed_from_u64(4);
            let p = G::<P>::random(&mut r);
            let q = G::<P>::random(&mut r);
            let pair_ns = best_of(|| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(P::pair(&p, &q));
                }
                t.elapsed().as_nanos() as u64 / iters as u64
            });
            let (x, y) = p.to_affine().unwrap();
            let a = Affine { x, y };
            let prep_batched = best_of(|| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(miller_chain_batched::<P>(a));
                }
                t.elapsed().as_nanos() as u64 / iters as u64
            });
            let prep_ref = best_of(|| {
                let t = Instant::now();
                for _ in 0..iters {
                    let mut ops = Vec::new();
                    miller_chain::<P>(a, |op| ops.push(op));
                    std::hint::black_box(ops);
                }
                t.elapsed().as_nanos() as u64 / iters as u64
            });
            let prep = P::prepare_q(&q);
            let eval = best_of(|| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(P::pair_prepared_q(&p, &prep));
                }
                t.elapsed().as_nanos() as u64 / iters as u64
            });
            eprintln!(
                "{label}: pair={pair_ns}ns eval-prepared={eval}ns | prepare batched={prep_batched}ns reference={prep_ref}ns"
            );
        }

        fn fp_suite<F: dlr_math::PrimeField>(label: &str, iters: u32) {
            let mut r = rand::rngs::StdRng::seed_from_u64(5);
            let a = F::random(&mut r);
            let b = F::random(&mut r);
            let c = F::random(&mut r);
            let fused = best_of(|| {
                let mut acc = a;
                let t = Instant::now();
                for _ in 0..iters {
                    acc = acc.mul_add(&b, &c);
                }
                let ns = t.elapsed().as_nanos() as u64 / iters as u64;
                std::hint::black_box(acc);
                ns
            });
            let split = best_of(|| {
                let mut acc = a;
                let t = Instant::now();
                for _ in 0..iters {
                    acc = acc * b + c;
                }
                let ns = t.elapsed().as_nanos() as u64 / iters as u64;
                std::hint::black_box(acc);
                ns
            });
            let bytes: Vec<u8> = (0..F::byte_len() + 16).map(|i| i as u8 ^ 0x5a).collect();
            let reduced = best_of(|| {
                let t = Instant::now();
                for _ in 0..iters / 8 {
                    std::hint::black_box(F::from_bytes_be_reduced(&bytes));
                }
                t.elapsed().as_nanos() as u64 / (iters / 8) as u64
            });
            let sq = a.square();
            let sqrt_ns = best_of(|| {
                let t = Instant::now();
                for _ in 0..iters / 8 {
                    std::hint::black_box(sq.sqrt());
                }
                t.elapsed().as_nanos() as u64 / (iters / 8) as u64
            });
            eprintln!(
                "{label}: fp mul_add fused={fused}ns split={split}ns | from_bytes_be_reduced={reduced}ns sqrt={sqrt_ns}ns"
            );
        }

        fn sampling_suite<P: SsParams>(label: &str, iters: u32) {
            let hk = best_of(|| {
                let t = Instant::now();
                for i in 0..iters {
                    std::hint::black_box(dlr_hash::hkdf::hkdf(
                        b"domain",
                        &i.to_be_bytes(),
                        b"dlr-h2c\0\0\0\0",
                        P::Fp::byte_len() + 17,
                    ));
                }
                t.elapsed().as_nanos() as u64 / iters as u64
            });
            let h2c = best_of(|| {
                let t = Instant::now();
                for i in 0..iters {
                    std::hint::black_box(G::<P>::hash_to_group(b"bench", &i.to_be_bytes()));
                }
                t.elapsed().as_nanos() as u64 / iters as u64
            });
            let mut r = rand::rngs::StdRng::seed_from_u64(6);
            let rnd = best_of(|| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(G::<P>::random(&mut r));
                }
                t.elapsed().as_nanos() as u64 / iters as u64
            });
            eprintln!("{label}: hkdf={hk}ns hash_to_group={h2c}ns g-random={rnd}ns");
        }

        fp2_suite::<crate::params::FpToy>("TOY", 2_000_000);
        fp2_suite::<crate::params::Fp512>("SS512", 200_000);
        fp_suite::<crate::params::FpToy>("TOY", 2_000_000);
        fp_suite::<crate::params::Fp512>("SS512", 200_000);
        sampling_suite::<Toy>("TOY", 20_000);
        pairing_suite::<Toy>("TOY", 2_000);
        pairing_suite::<Ss512>("SS512", 30);
    }

    #[test]
    fn prepared_second_slot_is_bit_identical_to_pair() {
        // Type-1 symmetry: ê(P, Q) = ê(Q, P) for subgroup points, and equal
        // residues have one canonical representation — so the swapped-slot
        // prepared evaluation must match `pair` exactly, not just up to
        // equality of abstract values.
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let qs: Vec<G<Toy>> = (0..5).map(|_| G::<Toy>::random(&mut r)).collect();
        let preps: Vec<_> = qs.iter().map(Toy::prepare_q).collect();
        for (q, prep) in qs.iter().zip(&preps) {
            assert_eq!(Toy::pair_prepared_q(&p, prep), Toy::pair(&p, q));
        }
        let expected: Vec<_> = qs.iter().map(|q| Toy::pair(&p, q)).collect();
        assert_eq!(Toy::multi_pair_prepared_q(&p, &preps), expected);
        // Identity in either slot.
        let id = G::<Toy>::identity();
        assert_eq!(
            Toy::pair_prepared_q(&p, &Toy::prepare_q(&id)),
            Toy::pair(&p, &id)
        );
        assert_eq!(
            Toy::pair_prepared_q(&id, &preps[0]),
            Toy::pair(&id, &qs[0])
        );
    }

    #[test]
    fn ss512_pairing_product_smoke() {
        let mut r = rng();
        let g = G::<Ss512>::generator();
        let q = G::<Ss512>::random(&mut r);
        let pairs = [(g, q), (q, g)];
        let prod = crate::pairing::pairing_product::<Ss512>(&pairs);
        let expect = tate_pairing::<Ss512>(&g, &q).raw_op(&tate_pairing::<Ss512>(&q, &g));
        assert_eq!(prod, expect);
    }

    mod differential {
        use super::*;
        use proptest::prelude::*;

        fn point(seed: u64) -> G<Toy> {
            G::<Toy>::hash_to_group(b"pairing-diff", &seed.to_be_bytes())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Prepared evaluation is bit-identical to the direct pairing.
            #[test]
            fn prepared_equals_direct(sp in any::<u64>(), sq in any::<u64>()) {
                let (p, q) = (point(sp), point(sq));
                let prep = crate::prepared::PreparedPoint::<Toy>::prepare(&p);
                prop_assert_eq!(prep.pair(&q), tate_pairing::<Toy>(&p, &q));
            }

            /// Batched product equals the per-element fold.
            #[test]
            fn product_equals_fold(
                ps in proptest::collection::vec(any::<u64>(), 0..5),
                qs in proptest::collection::vec(any::<u64>(), 0..5),
            ) {
                let pairs: Vec<(G<Toy>, G<Toy>)> = ps
                    .iter()
                    .zip(qs.iter())
                    .map(|(a, b)| (point(*a), point(*b)))
                    .collect();
                prop_assert_eq!(pairing_product::<Toy>(&pairs), product_reference(&pairs));
            }

            /// multi_pairing equals mapping tate_pairing.
            #[test]
            fn multi_equals_map(sp in any::<u64>(), qs in proptest::collection::vec(any::<u64>(), 0..6)) {
                let p = point(sp);
                let qs: Vec<G<Toy>> = qs.iter().map(|s| point(*s)).collect();
                let batched = crate::prepared::multi_pairing::<Toy>(&p, &qs);
                for (q, e) in qs.iter().zip(&batched) {
                    prop_assert_eq!(*e, tate_pairing::<Toy>(&p, q));
                }
            }
        }
    }
}
