//! The modified Tate pairing `ê(P, Q) = e_r(P, φ(Q))^{(p²−1)/r}`.
//!
//! `E : y² = x³ + x` over `F_p` with `p ≡ 3 (mod 4)` is supersingular with
//! distortion map `φ(x, y) = (−x, i·y)` into `E(F_{p²})`. Pairing `P`
//! against the distorted image of `Q` yields a **symmetric, non-degenerate**
//! bilinear map `G × G → GT` — the Type-1 map the paper's constructions are
//! written for.
//!
//! Implementation notes:
//! * the Miller loop runs in affine coordinates over `F_p` only — the
//!   distorted point's x-coordinate `−x_Q` lies in the base field, so each
//!   line evaluation is `(λ(x_Q + x_T) − y_T) + y_Q·i` with all arithmetic
//!   in `F_p` (two `F_p` muls) and only the accumulator living in `F_{p²}`;
//! * vertical lines evaluate into `F_p*`, which the final exponentiation
//!   `z ↦ z^{(p−1)·c}` kills (`z^{p−1} = 1` for `z ∈ F_p*`) — standard
//!   denominator elimination;
//! * the final exponentiation uses Frobenius: `z^{p−1} = z̄ · z^{−1}`,
//!   then one `pow` by the cofactor `c = (p+1)/r`.

use crate::counters;
use crate::curve::G;
use crate::gt::Gt;
use crate::params::SsParams;
use crate::traits::{Group, Pairing};
use dlr_math::{FieldElement, Fp2, PrimeField};

/// Affine point (never infinity) used inside the Miller loop.
#[derive(Clone, Copy)]
struct Affine<F> {
    x: F,
    y: F,
}

/// One Miller doubling step: returns the line value at `φ(Q)` and `2T`.
fn double_step<F: PrimeField>(t: Affine<F>, xq: &F, yq: &F) -> (Fp2<F>, Option<Affine<F>>) {
    if t.y.is_zero() {
        // 2-torsion: tangent is vertical — contributes a subfield factor.
        return (Fp2::one(), None);
    }
    let three_x2_plus_1 = t.x.square().double() + t.x.square() + F::one();
    let lambda = three_x2_plus_1 * t.y.double().inverse().expect("y != 0");
    let x3 = lambda.square() - t.x.double();
    let y3 = lambda * (t.x - x3) - t.y;
    // line through (T, T) evaluated at φ(Q) = (−x_Q, i·y_Q):
    //   l = i·y_Q − y_T − λ(−x_Q − x_T) = (λ(x_Q + x_T) − y_T) + y_Q·i
    let c0 = lambda * (*xq + t.x) - t.y;
    let line = Fp2::new(c0, *yq);
    (line, Some(Affine { x: x3, y: y3 }))
}

/// One Miller addition step: returns the line value at `φ(Q)` and `T + P`.
fn add_step<F: PrimeField>(
    t: Affine<F>,
    p: Affine<F>,
    xq: &F,
    yq: &F,
) -> (Fp2<F>, Option<Affine<F>>) {
    if t.x == p.x {
        if t.y == p.y {
            return double_step(t, xq, yq);
        }
        // T = −P: the chord is vertical — subfield factor only.
        return (Fp2::one(), None);
    }
    let lambda = (p.y - t.y) * (p.x - t.x).inverse().expect("x1 != x2");
    let x3 = lambda.square() - t.x - p.x;
    let y3 = lambda * (t.x - x3) - t.y;
    let c0 = lambda * (*xq + t.x) - t.y;
    let line = Fp2::new(c0, *yq);
    (line, Some(Affine { x: x3, y: y3 }))
}

/// Miller loop `f_{r,P}(φ(Q))` over the bits of the subgroup order `r`.
fn miller_loop<P: SsParams>(p: Affine<P::Fp>, q: Affine<P::Fp>) -> Fp2<P::Fp> {
    let r_limbs = crate::util::field_modulus_limbs::<P::Fr>();
    let mut nbits = 0u32;
    for (i, w) in r_limbs.iter().enumerate() {
        if *w != 0 {
            nbits = i as u32 * 64 + (64 - w.leading_zeros());
        }
    }

    let mut f = Fp2::<P::Fp>::one();
    let mut t: Option<Affine<P::Fp>> = Some(p);
    let mut i = nbits - 1;
    while i > 0 {
        i -= 1;
        f = f.square();
        if let Some(cur) = t {
            let (line, next) = double_step(cur, &q.x, &q.y);
            f *= line;
            t = next;
        }
        if (r_limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1 {
            if let Some(cur) = t {
                let (line, next) = add_step(cur, p, &q.x, &q.y);
                f *= line;
                t = next;
            } else {
                // T was the point at infinity: O + P = P, trivial function.
                t = Some(p);
            }
        }
    }
    f
}

/// Final exponentiation `z ↦ z^{(p²−1)/r} = (z̄ / z)^c` mapping into `μ_r`.
pub fn final_exponentiation<P: SsParams>(z: Fp2<P::Fp>) -> Gt<P> {
    debug_assert!(!z.is_zero());
    // z^{p−1} = conj(z) · z^{−1}  (Frobenius on F_{p²} is conjugation)
    let u = z.conjugate() * z.inverse().expect("nonzero");
    // now raise to the cofactor c = (p+1)/r
    let v = u.pow_vartime(P::COFACTOR);
    Gt::from_unitary(v)
}

/// The modified Tate pairing `ê : G × G → GT`.
pub fn tate_pairing<P: SsParams>(p: &G<P>, q: &G<P>) -> Gt<P> {
    counters::count_pairing();
    let (pa, qa) = match (p.to_affine(), q.to_affine()) {
        (Some(pa), Some(qa)) => (pa, qa),
        // e(O, ·) = e(·, O) = 1
        _ => return Gt::identity(),
    };
    let f = miller_loop::<P>(
        Affine { x: pa.0, y: pa.1 },
        Affine { x: qa.0, y: qa.1 },
    );
    if f.is_zero() {
        // Can only happen for inputs outside the order-r subgroup.
        return Gt::identity();
    }
    final_exponentiation::<P>(f)
}

impl<P: SsParams> Pairing for P {
    type Scalar = P::Fr;
    type G1 = G<P>;
    type G2 = G<P>;
    type Gt = Gt<P>;
    const NAME: &'static str = P::NAME;

    fn pair(p: &Self::G1, q: &Self::G2) -> Self::Gt {
        tate_pairing::<P>(p, q)
    }

    fn pair_generators() -> Self::Gt {
        // Gt::generator() caches e(g, g).
        Gt::<P>::generator()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Ss512, Toy};
    use rand::SeedableRng;

    type Fr = <Toy as SsParams>::Fr;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn non_degenerate_on_generator() {
        let g = G::<Toy>::generator();
        let e = Toy::pair(&g, &g);
        assert!(!e.is_identity());
        assert!(e.is_in_subgroup());
    }

    #[test]
    fn bilinearity() {
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let q = G::<Toy>::random(&mut r);
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        let lhs = Toy::pair(&p.pow(&a), &q.pow(&b));
        let rhs = Toy::pair(&p, &q).pow(&(a * b));
        assert_eq!(lhs, rhs);
        // additivity in the first slot
        let p2 = G::<Toy>::random(&mut r);
        assert_eq!(
            Toy::pair(&p.op(&p2), &q),
            Toy::pair(&p, &q).op(&Toy::pair(&p2, &q))
        );
    }

    #[test]
    fn symmetry() {
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let q = G::<Toy>::random(&mut r);
        assert_eq!(Toy::pair(&p, &q), Toy::pair(&q, &p));
    }

    #[test]
    fn identity_slots() {
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let id = G::<Toy>::identity();
        assert!(Toy::pair(&p, &id).is_identity());
        assert!(Toy::pair(&id, &p).is_identity());
    }

    #[test]
    fn inverse_slot() {
        let mut r = rng();
        let p = G::<Toy>::random(&mut r);
        let q = G::<Toy>::random(&mut r);
        assert_eq!(Toy::pair(&p.inverse(), &q), Toy::pair(&p, &q).inverse());
    }

    #[test]
    fn pair_generators_cached_consistent() {
        let direct = Toy::pair(&G::<Toy>::generator(), &G::<Toy>::generator());
        assert_eq!(Toy::pair_generators(), direct);
        assert_eq!(Gt::<Toy>::generator(), direct);
    }

    #[test]
    fn pairing_counter_bumps() {
        let g = G::<Toy>::generator();
        let (_, report) = crate::counters::measure(|| {
            let _ = Toy::pair(&g, &g);
        });
        assert_eq!(report.pairings, 1);
    }

    #[test]
    fn ss512_bilinearity_smoke() {
        let mut r = rng();
        let g = G::<Ss512>::generator();
        let a = <Ss512 as SsParams>::Fr::random(&mut r);
        let lhs = Ss512::pair(&g.pow(&a), &g);
        let rhs = Ss512::pair(&g, &g).pow(&a);
        assert_eq!(lhs, rhs);
        assert!(!lhs.is_identity());
    }
}
