//! Supersingular-curve parameter sets.
//!
//! All sets share the curve shape `E : y² = x³ + x` over `F_p` with
//! `p ≡ 3 (mod 4)`, which makes `E` supersingular with `#E(F_p) = p + 1`
//! and embedding degree 2. The subgroup order `r` is prime with
//! `p = c·r − 1` (so `c = (p+1)/r` is the cofactor and `r | p + 1`).
//! The distortion map `φ(x, y) = (−x, i·y)` (with `i² = −1` in `F_{p²}`)
//! turns the Tate pairing into a **symmetric** pairing
//! `ê(P, Q) = e(P, φ(Q))` — exactly the Type-1 map `e : G × G → GT` the
//! paper's parameter generator outputs.
//!
//! Parameters were produced by a seeded search (`tools/paramgen.py`): pick
//! a prime `r`, then scan cofactors `c ≡ 0 (mod 4)` until `p = c·r − 1` is
//! prime (then `p ≡ 3 (mod 4)` automatically since `4 | c` and `r` is odd).
//! The `params_validate` tests below re-verify primality and the arithmetic
//! relations from scratch on every test run.
//!
//! | set    | log₂ p | log₂ r | intent |
//! |--------|--------|--------|--------|
//! | TOY    | 71     | 63     | fast unit tests & leakage-game simulation |
//! | SS512  | 512    | 256    | benchmark-grade, ~medium security |
//! | SS768  | 768    | 256    | higher security margin |
//! | SS1024 | 1024   | 256    | conservative setting |
//!
//! (Security of Type-1 curves is governed by the dlog in `F_{p²}`; these
//! research-grade sizes reproduce the paper's asymptotics, not a production
//! security review.)

use core::fmt::Debug;
use core::hash::Hash;
use dlr_math::define_prime_field;
use std::sync::OnceLock;

define_prime_field!(
    /// Base field of the TOY curve (71-bit prime, `p ≡ 3 (mod 4)`).
    pub struct FpToy, 2, "0x42ae6467338a04eeeb"
);
define_prime_field!(
    /// Scalar field of the TOY curve (63-bit prime subgroup order).
    pub struct FrToy, 1, "0x5ed5e420ff583487"
);
define_prime_field!(
    /// Base field of SS512 (512-bit prime).
    pub struct Fp512, 8, "0x8000000000000000000000000000000000000000000000000000000000000018ba4ede9892a3b3a5815cab04f516ffb1a9221cd8a5599e9c3c9137d92713e5eb"
);
define_prime_field!(
    /// Shared 256-bit scalar field of SS512/SS768/SS1024.
    pub struct Fr256, 4, "0x9c7b55f33f4a555666c8d7baaa676515d2f48907cb57039e9d59f778aec33793"
);
define_prime_field!(
    /// Base field of SS768 (768-bit prime).
    pub struct Fp768, 12, "0x800000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000004129218e4727200ea510294ff0748b7f3b9e1a9175cce37ae470f806bb6b49c41b3"
);
define_prime_field!(
    /// Base field of SS1024 (1024-bit prime).
    pub struct Fp1024, 16, "0x800000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000025da9ed8b266a7383988013e410c5f981d97fcabbae36e1834e86e45ea9bb92703"
);

/// A supersingular Type-1 parameter set.
///
/// This trait is implemented by the zero-sized marker types [`Toy`],
/// [`Ss512`], [`Ss768`], [`Ss1024`]; downstream code is generic over it
/// (usually through the [`Pairing`](crate::traits::Pairing) impl).
pub trait SsParams:
    Sized + Copy + Clone + Debug + PartialEq + Eq + Hash + Send + Sync + Default + 'static
{
    /// Base field `F_p`.
    type Fp: dlr_math::PrimeField;
    /// Scalar field `Z_r` (prime subgroup order; the paper's `Z_p`).
    type Fr: dlr_math::PrimeField;
    /// Parameter-set name.
    const NAME: &'static str;
    /// Cofactor `c = (p+1)/r`, little-endian limbs.
    const COFACTOR: &'static [u64];
    /// Domain-separation seed for deterministic generator derivation.
    const GENERATOR_DOMAIN: &'static [u8];

    /// The process-wide typed cache cell for this parameter set: the
    /// derived generators and their fixed-base exponentiation tables.
    /// Generic code cannot declare a `static` whose type mentions a type
    /// parameter, so each concrete set carries its own cell — every impl
    /// is the same two lines (see [`Toy`]'s).
    fn caches() -> &'static ParamCaches<Self>;
}

/// Typed per-parameter-set caches (see [`SsParams::caches`]).
///
/// Replaces the former process-global `Mutex<HashMap<TypeId, bytes>>`
/// generator caches, which re-deserialized (and for the curve, re-solved a
/// square root) on every `generator()` call — on the encrypt hot path.
/// Here the element is stored typed and handed out by copy.
pub struct ParamCaches<P: SsParams> {
    /// The cached source-group generator.
    pub g_generator: OnceLock<crate::curve::G<P>>,
    /// The cached target-group generator `e(g, g)`.
    pub gt_generator: OnceLock<crate::gt::Gt<P>>,
    /// Fixed-base tables for the source generator.
    pub g_table: OnceLock<crate::fixedbase::FixedBase<crate::curve::G<P>>>,
    /// Fixed-base tables for the target generator.
    pub gt_table: OnceLock<crate::fixedbase::FixedBase<crate::gt::Gt<P>>>,
}

impl<P: SsParams> ParamCaches<P> {
    /// An empty cell, usable in `static` initializers.
    pub const fn new() -> Self {
        Self {
            g_generator: OnceLock::new(),
            gt_generator: OnceLock::new(),
            g_table: OnceLock::new(),
            gt_table: OnceLock::new(),
        }
    }
}

impl<P: SsParams> Default for ParamCaches<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// TOY parameter set: 71-bit base field for fast tests and simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Toy;

impl SsParams for Toy {
    type Fp = FpToy;
    type Fr = FrToy;
    const NAME: &'static str = "TOY";
    const COFACTOR: &'static [u64] = &[0xb4];
    const GENERATOR_DOMAIN: &'static [u8] = b"dlr-toy-generator";

    fn caches() -> &'static ParamCaches<Self> {
        static CACHES: ParamCaches<Toy> = ParamCaches::new();
        &CACHES
    }
}

const C512: [u64; 4] =
    dlr_math::limbs::parse_hex("0xd16791f07120ce6adfadd171339ecd9e695ed629d5e1ab2b64c64197c9a25de4");
const C768: [u64; 8] = dlr_math::limbs::parse_hex("0xd16791f07120ce6adfadd171339ecd9e695ed629d5e1ab2b64c64197c9a25dbb8bc91b933af06c0a09d588faf465864511d6f944e1050eff21d7a6d8f9265ffc");
const C1024: [u64; 12] = dlr_math::limbs::parse_hex("0xd16791f07120ce6adfadd171339ecd9e695ed629d5e1ab2b64c64197c9a25dbb8bc91b933af06c0a09d588faf465864511d6f944e1050eff21d7a6d8f926595261dd1b09bc1cff6b4da0194f10c8d5b382229cf6ec3cca4628b5816467d2976c");

/// SS512 parameter set: 512-bit base field, 256-bit subgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Ss512;

impl SsParams for Ss512 {
    type Fp = Fp512;
    type Fr = Fr256;
    const NAME: &'static str = "SS512";
    const COFACTOR: &'static [u64] = &C512;
    const GENERATOR_DOMAIN: &'static [u8] = b"dlr-ss512-generator";

    fn caches() -> &'static ParamCaches<Self> {
        static CACHES: ParamCaches<Ss512> = ParamCaches::new();
        &CACHES
    }
}

/// SS768 parameter set: 768-bit base field, 256-bit subgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Ss768;

impl SsParams for Ss768 {
    type Fp = Fp768;
    type Fr = Fr256;
    const NAME: &'static str = "SS768";
    const COFACTOR: &'static [u64] = &C768;
    const GENERATOR_DOMAIN: &'static [u8] = b"dlr-ss768-generator";

    fn caches() -> &'static ParamCaches<Self> {
        static CACHES: ParamCaches<Ss768> = ParamCaches::new();
        &CACHES
    }
}

/// SS1024 parameter set: 1024-bit base field, 256-bit subgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Ss1024;

impl SsParams for Ss1024 {
    type Fp = Fp1024;
    type Fr = Fr256;
    const NAME: &'static str = "SS1024";
    const COFACTOR: &'static [u64] = &C1024;
    const GENERATOR_DOMAIN: &'static [u8] = b"dlr-ss1024-generator";

    fn caches() -> &'static ParamCaches<Self> {
        static CACHES: ParamCaches<Ss1024> = ParamCaches::new();
        &CACHES
    }
}

#[cfg(test)]
mod params_validate {
    use super::*;
    use dlr_math::mont::is_probable_prime;
    use dlr_math::PrimeField;
    use rand::SeedableRng;

    /// Schoolbook `c · r` into a wide accumulator, then compare to `p + 1`.
    fn check_cofactor_relation(p_be: &[u8], r_be: &[u8], c: &[u64]) {
        // big-endian bytes -> u64 LE limbs
        fn to_limbs(be: &[u8]) -> Vec<u64> {
            let mut le: Vec<u8> = be.to_vec();
            le.reverse();
            le.chunks(8)
                .map(|ch| {
                    let mut b = [0u8; 8];
                    b[..ch.len()].copy_from_slice(ch);
                    u64::from_le_bytes(b)
                })
                .collect()
        }
        let r = to_limbs(r_be);
        let p = to_limbs(p_be);
        let mut prod = vec![0u64; r.len() + c.len() + 1];
        for (i, &ci) in c.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &rj) in r.iter().enumerate() {
                let t = prod[i + j] as u128 + ci as u128 * rj as u128 + carry;
                prod[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + r.len();
            while carry > 0 {
                let t = prod[k] as u128 + carry;
                prod[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        // subtract 1
        let mut borrow = 1u64;
        for limb in prod.iter_mut() {
            let (d, b) = limb.overflowing_sub(borrow);
            *limb = d;
            borrow = b as u64;
            if borrow == 0 {
                break;
            }
        }
        // compare with p (zero-extended)
        for (i, limb) in prod.iter().enumerate() {
            let expect = p.get(i).copied().unwrap_or(0);
            assert_eq!(*limb, expect, "c*r - 1 != p at limb {i}");
        }
    }

    fn validate<P: SsParams, const LP: usize, const LR: usize>() {
        let p = dlr_math::limbs::from_bytes_be::<LP>(&P::Fp::modulus_be_bytes()).unwrap();
        let r = dlr_math::limbs::from_bytes_be::<LR>(&P::Fr::modulus_be_bytes()).unwrap();
        assert!(is_probable_prime(&p), "{}: p not prime", P::NAME);
        assert!(is_probable_prime(&r), "{}: r not prime", P::NAME);
        assert_eq!(p[0] & 3, 3, "{}: p != 3 mod 4", P::NAME);
        assert!(P::Fp::modulus_is_3_mod_4());
        check_cofactor_relation(
            &P::Fp::modulus_be_bytes(),
            &P::Fr::modulus_be_bytes(),
            P::COFACTOR,
        );
    }

    #[test]
    fn toy() {
        validate::<Toy, 2, 1>();
    }

    #[test]
    fn ss512() {
        validate::<Ss512, 8, 4>();
    }

    #[test]
    fn ss768() {
        validate::<Ss768, 12, 4>();
    }

    #[test]
    fn ss1024() {
        validate::<Ss1024, 16, 4>();
    }

    /// Differential check of the lazy-reduction `F_{p²}` arithmetic at the
    /// production field widths (the math-crate tests cover a 1-limb field;
    /// multi-limb overflow behaviour only shows up here).
    fn lazy_fp2_differential<F: dlr_math::PrimeField>() {
        use dlr_math::{FieldElement, Fp2};
        let mut r = rand::rngs::StdRng::seed_from_u64(9);
        let mut pool: Vec<Fp2<F>> = (0..16).map(|_| Fp2::random(&mut r)).collect();
        let pm1 = -F::one();
        for &x in &[F::zero(), F::one(), pm1] {
            for &y in &[F::zero(), F::one(), pm1] {
                pool.push(Fp2::new(x, y));
            }
        }
        for a in &pool {
            for b in &pool {
                assert_eq!(*a * *b, a.mul_reduced_reference(b));
            }
            assert_eq!(a.square(), a.mul_reduced_reference(a));
            assert_eq!(a.norm(), a.c0 * a.c0 + a.c1 * a.c1);
        }
        // Long p−1-valued accumulation: stresses the overflow limb.
        let worst = Fp2::new(pm1, pm1);
        let (a, b) = (vec![worst; 129], vec![worst; 129]);
        let expect = a
            .iter()
            .zip(b.iter())
            .fold(Fp2::zero(), |acc, (x, y)| acc + x.mul_reduced_reference(y));
        assert_eq!(Fp2::sum_of_products(&a, &b), expect);
    }

    #[test]
    fn lazy_fp2_differential_toy_field() {
        lazy_fp2_differential::<FpToy>();
    }

    #[test]
    fn lazy_fp2_differential_ss512_field() {
        lazy_fp2_differential::<Fp512>();
    }

    #[test]
    fn modulus_bit_lengths() {
        assert_eq!(FpToy::modulus_bits(), 71);
        assert_eq!(FrToy::modulus_bits(), 63);
        assert_eq!(Fp512::modulus_bits(), 512);
        assert_eq!(Fr256::modulus_bits(), 256);
        assert_eq!(Fp768::modulus_bits(), 768);
        assert_eq!(Fp1024::modulus_bits(), 1024);
    }
}
