//! Fixed-base exponentiation: precomputed radix-2^w block tables
//! (Lim–Lee / BGMW style combs).
//!
//! DLR encryption is two exponentiations with **fixed** bases —
//! `Enc_pk(m) = (g^t, m·z^t)` with `g` the generator and `z = e(g1, g2)`
//! from the public key — so the doubling chain of a generic square-and-
//! multiply is pure waste: every power of two of the base can be computed
//! once and reused forever. [`FixedBase`] stores
//! `tables[b][d−1] = base^(d·2^{b·w})` for each width-`w` digit position
//! `b` and digit value `d ∈ 1..2^w`; an exponentiation then costs one
//! group operation per nonzero digit and **zero doublings**.
//!
//! For a 256-bit scalar at `w = 5` that is ≤ 52 operations versus ~384 for
//! the binary chain (256 doublings + ~128 multiplies) — the source of the
//! A7 ablation's speedup (see `EXPERIMENTS.md`).
//!
//! # Counter semantics
//!
//! [`FixedBase::pow_fixed`] returns the same group element as
//! [`Group::pow`] on the same inputs and bumps exactly one `pow` counter of
//! the same family; table construction uses only uninstrumented `raw_*`
//! operations. Operation-count reports therefore cannot distinguish the
//! precomputed path from the naive one (see `crates/metrics/README.md`).

use crate::counters;
use crate::traits::{Group, GroupKind};
use dlr_math::limbs::{bits_slice, window};
use dlr_math::PrimeField;
use std::sync::{Arc, OnceLock};

/// Radix width for a scalar of `bits` bits. Wider windows cost
/// exponentially more precompute and memory but save linearly on
/// evaluation; past `w = 5` the table build dominates for our sizes.
fn default_window(bits: u32) -> usize {
    if bits <= 192 {
        4
    } else {
        5
    }
}

/// Precomputed radix-2^w tables for exponentiating one fixed base.
///
/// Build once with [`FixedBase::new`] (or behind a [`LazyFixedBase`] /
/// `OnceLock` when the base outlives the call site), then call
/// [`FixedBase::pow_fixed`] per exponent.
#[derive(Clone, Debug)]
pub struct FixedBase<G: Group> {
    base: G,
    window: usize,
    /// `tables[b][d-1] = base^(d·2^{b·window})`, `d ∈ 1..2^window`.
    tables: Vec<Vec<G>>,
}

impl<G: Group> FixedBase<G> {
    /// Precompute tables covering the full scalar bit length, with the
    /// default window for this scalar size.
    pub fn new(base: &G) -> Self {
        Self::with_window(base, default_window(G::Scalar::modulus_bits()))
    }

    /// Precompute with an explicit radix width `w ∈ 1..=8`.
    pub fn with_window(base: &G, window: usize) -> Self {
        assert!((1..=8).contains(&window), "fixed-base window out of range");
        let bits = G::Scalar::modulus_bits() as usize;
        let blocks = bits.div_ceil(window);
        let mut tables = Vec::with_capacity(blocks);
        // `cur` walks the radix powers base^(2^{b·w}); each block row is
        // cur, cur², …, cur^{2^w−1} by repeated multiplication, and the
        // next radix power is row-top · cur — no doubling chain needed.
        let mut cur = *base;
        for _ in 0..blocks {
            let mut row = Vec::with_capacity((1usize << window) - 1);
            row.push(cur);
            for d in 2..(1usize << window) {
                let prev = row[d - 2];
                row.push(prev.raw_op(&cur));
            }
            let top = row[row.len() - 1];
            cur = top.raw_op(&cur);
            tables.push(row);
        }
        Self {
            base: *base,
            window,
            tables,
        }
    }

    /// The base these tables were built for.
    pub fn base(&self) -> &G {
        &self.base
    }

    /// The radix width `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total table footprint in group elements.
    pub fn table_len(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }

    /// `base^exp` — identical group element to `self.base().pow(exp)`, and
    /// the identical single `pow` counter bump.
    pub fn pow_fixed(&self, exp: &G::Scalar) -> G {
        match G::KIND {
            GroupKind::Target => counters::count_gt_pow(),
            _ => counters::count_g_pow(),
        }
        self.pow_raw_limbs(&exp.to_canonical_limbs())
    }

    /// Uninstrumented digit-recombination core over little-endian limbs.
    /// Exponents wider than the covered bit length (never produced by
    /// canonical scalars) fall back to the generic sliding-window chain.
    pub fn pow_raw_limbs(&self, exp: &[u64]) -> G {
        if bits_slice(exp) as usize > self.window * self.tables.len() {
            return self.base.pow_vartime_limbs(exp);
        }
        let mut acc = G::identity();
        for (b, row) in self.tables.iter().enumerate() {
            let d = window(exp, b * self.window, self.window);
            if d != 0 {
                acc = acc.raw_op(&row[d - 1]);
            }
        }
        acc
    }
}

/// A shareable, lazily-built [`FixedBase`] cell for bases that live inside
/// long-lived values — the `z` of a `dlr::PublicKey`, the `z` of IBE
/// public parameters. The first exponentiation builds the tables; clones
/// share them (`Arc`).
///
/// Equality and hashing deliberately ignore the cache so embedding one in
/// a struct leaves its derived `PartialEq`/`Eq`/`Hash` semantics — and its
/// wire format, which never serializes the cache — unchanged.
pub struct LazyFixedBase<G: Group>(Arc<OnceLock<FixedBase<G>>>);

impl<G: Group> LazyFixedBase<G> {
    /// An empty cell; tables are built on first use.
    pub fn new() -> Self {
        Self(Arc::new(OnceLock::new()))
    }

    /// The tables for `base`, built on first call. Callers must pass the
    /// same base on every call against one cell (debug-asserted): the cell
    /// belongs to the value that owns the base.
    pub fn tables(&self, base: &G) -> &FixedBase<G> {
        let tables = self.0.get_or_init(|| FixedBase::new(base));
        debug_assert_eq!(
            tables.base(),
            base,
            "LazyFixedBase reused with a different base"
        );
        tables
    }

    /// Build the tables now — for warming caches off the hot path (the
    /// server keyring does this outside its generation locks). No-op when
    /// already built.
    pub fn warm(&self, base: &G) {
        let _ = self.tables(base);
    }

    /// True once the tables have been built.
    pub fn is_warm(&self) -> bool {
        self.0.get().is_some()
    }

    /// `base^exp` through the cached tables: same value and counter bump
    /// as `base.pow(exp)`.
    pub fn pow(&self, base: &G, exp: &G::Scalar) -> G {
        self.tables(base).pow_fixed(exp)
    }
}

impl<G: Group> Clone for LazyFixedBase<G> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<G: Group> Default for LazyFixedBase<G> {
    fn default() -> Self {
        Self::new()
    }
}

impl<G: Group> core::fmt::Debug for LazyFixedBase<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_tuple("LazyFixedBase")
            .field(&if self.is_warm() { "warm" } else { "cold" })
            .finish()
    }
}

impl<G: Group> PartialEq for LazyFixedBase<G> {
    fn eq(&self, _other: &Self) -> bool {
        true // caches carry no semantic state
    }
}

impl<G: Group> Eq for LazyFixedBase<G> {}

impl<G: Group> core::hash::Hash for LazyFixedBase<G> {
    fn hash<H: core::hash::Hasher>(&self, _state: &mut H) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::G;
    use crate::gt::Gt;
    use crate::params::{SsParams, Toy};
    use dlr_math::FieldElement;
    use rand::SeedableRng;

    type Fr = <Toy as SsParams>::Fr;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn edge_scalars(r: &mut impl rand::RngCore) -> Vec<Fr> {
        let mut out = vec![
            Fr::zero(),
            Fr::one(),
            -Fr::one(), // r − 1
            Fr::from_u64(2),
            Fr::from_u64(1 << 62),
        ];
        for _ in 0..8 {
            out.push(Fr::random(r));
        }
        out
    }

    #[test]
    fn matches_pow_on_source_group() {
        let mut r = rng();
        let base = G::<Toy>::random(&mut r);
        let fb = FixedBase::new(&base);
        for s in edge_scalars(&mut r) {
            assert_eq!(fb.pow_fixed(&s), base.pow(&s), "scalar {s:?}");
        }
    }

    #[test]
    fn matches_pow_on_target_group() {
        let mut r = rng();
        let base = Gt::<Toy>::random(&mut r);
        let fb = FixedBase::new(&base);
        for s in edge_scalars(&mut r) {
            assert_eq!(fb.pow_fixed(&s), base.pow(&s), "scalar {s:?}");
        }
    }

    #[test]
    fn every_window_width_agrees() {
        let mut r = rng();
        let base = G::<Toy>::random(&mut r);
        let s = Fr::random(&mut r);
        let expect = base.pow(&s);
        for w in 1..=8 {
            let fb = FixedBase::with_window(&base, w);
            assert_eq!(fb.pow_fixed(&s), expect, "window {w}");
            assert!(fb.table_len() >= 1);
        }
    }

    #[test]
    fn identity_base_and_identity_result() {
        let fb = FixedBase::new(&G::<Toy>::identity());
        assert_eq!(fb.pow_fixed(&Fr::from_u64(12345)), G::<Toy>::identity());
        let mut r = rng();
        let base = G::<Toy>::random(&mut r);
        let fb = FixedBase::new(&base);
        assert_eq!(fb.pow_fixed(&Fr::zero()), G::<Toy>::identity());
    }

    #[test]
    fn wide_limb_fallback_matches_generic_chain() {
        let mut r = rng();
        let base = G::<Toy>::random(&mut r);
        let fb = FixedBase::new(&base);
        // Wider than the table coverage (Toy scalars are 63-bit): must
        // fall back to the generic chain, not truncate.
        let wide = [u64::MAX, 0x1f];
        assert_eq!(fb.pow_raw_limbs(&wide), base.pow_vartime_limbs(&wide));
    }

    #[test]
    fn counter_parity_with_pow() {
        let mut r = rng();
        let g = G::<Toy>::random(&mut r);
        let t = Gt::<Toy>::random(&mut r);
        let s = Fr::random(&mut r);
        let fg = FixedBase::new(&g);
        let ft = FixedBase::new(&t);
        let (_, naive) = counters::measure(|| {
            let _ = g.pow(&s);
            let _ = t.pow(&s);
        });
        let (_, fixed) = counters::measure(|| {
            let _ = fg.pow_fixed(&s);
            let _ = ft.pow_fixed(&s);
        });
        assert_eq!(naive, fixed, "op reports must be indistinguishable");
        assert_eq!(fixed.g_pow, 1);
        assert_eq!(fixed.gt_pow, 1);
    }

    #[test]
    fn table_build_is_uninstrumented() {
        let mut r = rng();
        let base = G::<Toy>::random(&mut r);
        let (_, report) = counters::measure(|| {
            let _ = FixedBase::new(&base);
        });
        assert_eq!(report.g_op, 0);
        assert_eq!(report.g_pow, 0);
    }

    #[test]
    fn lazy_cell_shares_and_compares_equal() {
        let mut r = rng();
        let base = G::<Toy>::random(&mut r);
        let cell = LazyFixedBase::new();
        assert!(!cell.is_warm());
        let copy = cell.clone();
        let s = Fr::random(&mut r);
        assert_eq!(cell.pow(&base, &s), base.pow(&s));
        // the clone shares the built tables
        assert!(copy.is_warm());
        assert_eq!(cell, LazyFixedBase::new()); // equality ignores contents
        copy.warm(&base); // no-op
    }
}
