//! Thread-local operation counters.
//!
//! The efficiency comparisons of the paper (footnote 3: exponentiations and
//! pairings per encryption, device-side work split of §1.1) are reproduced
//! by *counting operations*, not by guessing from formulas. Group
//! implementations in this crate bump these counters; the bench harness
//! resets/snapshots them around each protocol phase.

use core::cell::Cell;

thread_local! {
    static G_OP: Cell<u64> = const { Cell::new(0) };
    static G_POW: Cell<u64> = const { Cell::new(0) };
    static GT_OP: Cell<u64> = const { Cell::new(0) };
    static GT_POW: Cell<u64> = const { Cell::new(0) };
    static PAIRING: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of the per-thread operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpsReport {
    /// Source-group multiplications (point additions).
    pub g_op: u64,
    /// Source-group exponentiations (scalar multiplications).
    pub g_pow: u64,
    /// Target-group multiplications.
    pub gt_op: u64,
    /// Target-group exponentiations.
    pub gt_pow: u64,
    /// Pairing evaluations.
    pub pairings: u64,
}

impl OpsReport {
    /// Total exponentiations across both groups.
    pub fn total_pows(&self) -> u64 {
        self.g_pow + self.gt_pow
    }
}

impl core::ops::Add for OpsReport {
    type Output = OpsReport;
    fn add(self, rhs: Self) -> Self {
        OpsReport {
            g_op: self.g_op + rhs.g_op,
            g_pow: self.g_pow + rhs.g_pow,
            gt_op: self.gt_op + rhs.gt_op,
            gt_pow: self.gt_pow + rhs.gt_pow,
            pairings: self.pairings + rhs.pairings,
        }
    }
}

impl core::ops::AddAssign for OpsReport {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl core::ops::Sub for OpsReport {
    type Output = OpsReport;
    fn sub(self, rhs: Self) -> Self {
        OpsReport {
            g_op: self.g_op - rhs.g_op,
            g_pow: self.g_pow - rhs.g_pow,
            gt_op: self.gt_op - rhs.gt_op,
            gt_pow: self.gt_pow - rhs.gt_pow,
            pairings: self.pairings - rhs.pairings,
        }
    }
}

impl core::fmt::Display for OpsReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "G-mul={} G-exp={} GT-mul={} GT-exp={} pairings={}",
            self.g_op, self.g_pow, self.gt_op, self.gt_pow, self.pairings
        )
    }
}

/// Count one source-group multiplication (backend hook).
pub fn count_g_op() {
    G_OP.with(|c| c.set(c.get() + 1));
}
/// Count one source-group exponentiation (backend hook).
pub fn count_g_pow() {
    G_POW.with(|c| c.set(c.get() + 1));
}
/// Count one target-group multiplication (backend hook).
pub fn count_gt_op() {
    GT_OP.with(|c| c.set(c.get() + 1));
}
/// Count one target-group exponentiation (backend hook).
pub fn count_gt_pow() {
    GT_POW.with(|c| c.set(c.get() + 1));
}
/// Count one pairing evaluation (backend hook).
pub fn count_pairing() {
    PAIRING.with(|c| c.set(c.get() + 1));
}

/// Fold a whole [`OpsReport`] into this thread's counters.
///
/// This is the merge half of parallel fan-out: worker threads bump their
/// *own* thread-local counters, the spawning code captures each worker's
/// delta with [`measure`], and replays the deltas here so the calling
/// thread's span accounting (see `dlr-metrics`) stays exact — a parallel
/// execution reports byte-identical op deltas to the sequential one.
pub fn add_report(r: OpsReport) {
    G_OP.with(|c| c.set(c.get() + r.g_op));
    G_POW.with(|c| c.set(c.get() + r.g_pow));
    GT_OP.with(|c| c.set(c.get() + r.gt_op));
    GT_POW.with(|c| c.set(c.get() + r.gt_pow));
    PAIRING.with(|c| c.set(c.get() + r.pairings));
}

/// Read the current counter values for this thread.
pub fn snapshot() -> OpsReport {
    OpsReport {
        g_op: G_OP.with(Cell::get),
        g_pow: G_POW.with(Cell::get),
        gt_op: GT_OP.with(Cell::get),
        gt_pow: GT_POW.with(Cell::get),
        pairings: PAIRING.with(Cell::get),
    }
}

/// Reset all counters for this thread.
pub fn reset() {
    G_OP.with(|c| c.set(0));
    G_POW.with(|c| c.set(0));
    GT_OP.with(|c| c.set(0));
    GT_POW.with(|c| c.set(0));
    PAIRING.with(|c| c.set(0));
}

/// Run `f` and return its result together with the operations it performed
/// (on this thread).
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, OpsReport) {
    let before = snapshot();
    let out = f();
    let after = snapshot();
    (out, after - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_is_relative() {
        count_g_op();
        let (_, report) = measure(|| {
            count_g_pow();
            count_g_pow();
            count_pairing();
        });
        assert_eq!(report.g_op, 0);
        assert_eq!(report.g_pow, 2);
        assert_eq!(report.pairings, 1);
        assert_eq!(report.total_pows(), 2);
    }

    #[test]
    fn display_is_nonempty() {
        let s = snapshot().to_string();
        assert!(s.contains("pairings="));
    }

    #[test]
    fn add_report_replays_deltas() {
        let (_, report) = measure(|| {
            add_report(OpsReport {
                g_op: 1,
                g_pow: 2,
                gt_op: 3,
                gt_pow: 4,
                pairings: 5,
            });
        });
        assert_eq!(report.g_op, 1);
        assert_eq!(report.g_pow, 2);
        assert_eq!(report.gt_op, 3);
        assert_eq!(report.gt_pow, 4);
        assert_eq!(report.pairings, 5);
    }
}
