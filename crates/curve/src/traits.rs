//! Abstract group and pairing interfaces.
//!
//! The paper writes all groups **multiplicatively** (`g^a`, `∏ aᵢ^{sᵢ}`);
//! these traits keep that notation so the scheme code in `dlr-core` reads
//! like Construction 5.3. The elliptic-curve source group implements the
//! operation as point addition; the target group as `F_{p²}` multiplication.
//!
//! # Instrumentation
//!
//! The public entry points [`Group::op`], [`Group::pow`] and
//! [`Group::product_of_powers`] bump the thread-local counters in
//! [`crate::counters`] (one "exponentiation" per base of a
//! multi-exponentiation); the internal `raw_*` methods do not. The bench
//! harness uses the counters to reproduce the paper's operation-count
//! comparisons (footnote 3, device work split of §1.1).

use crate::counters;
use core::fmt::Debug;
use core::hash::Hash;
use dlr_math::PrimeField;
use rand::RngCore;

/// Which counter family a group's operations are recorded under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKind {
    /// The pairing source group `G`.
    Source,
    /// The pairing target group `GT`.
    Target,
    /// A standalone group (mini experiment groups); counted as source.
    Plain,
}

/// A prime-order cyclic group, written multiplicatively.
pub trait Group:
    Sized + Copy + Clone + Debug + PartialEq + Eq + Hash + Send + Sync + Default + 'static
{
    /// The scalar field `Z_p` of the paper (prime group order).
    type Scalar: PrimeField;
    /// Human-readable name used in instrumentation output.
    const NAME: &'static str;
    /// Counter family for instrumentation.
    const KIND: GroupKind;

    /// The neutral element.
    fn identity() -> Self;
    /// A fixed generator.
    fn generator() -> Self;
    /// Group operation without instrumentation (implementation hook).
    #[doc(hidden)]
    fn raw_op(&self, rhs: &Self) -> Self;
    /// Squaring/doubling without instrumentation. Implementations with a
    /// cheaper dedicated formula should override.
    #[doc(hidden)]
    fn raw_double(&self) -> Self {
        self.raw_op(self)
    }
    /// The inverse element (`a^{-1}`).
    fn inverse(&self) -> Self;
    /// Sample a uniformly random element **without a known discrete
    /// logarithm** (the §5.2 remark requires sampling group elements
    /// directly so their dlogs never exist in any device's memory).
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    /// Serialize to canonical bytes (fixed length [`Self::byte_len`]).
    fn to_bytes(&self) -> Vec<u8>;
    /// Parse canonical bytes. Validates well-formedness (e.g. the point is
    /// on the curve); full prime-order-subgroup membership is checked by
    /// [`Self::is_in_subgroup`] — see the honest-but-leaky device model
    /// discussion in `dlr-protocol`.
    fn from_bytes(bytes: &[u8]) -> Option<Self>;
    /// Serialized length in bytes.
    fn byte_len() -> usize;
    /// Full membership test in the prime-order subgroup.
    fn is_in_subgroup(&self) -> bool;

    /// The group operation (`a·b` in paper notation).
    fn op(&self, rhs: &Self) -> Self {
        match Self::KIND {
            GroupKind::Target => counters::count_gt_op(),
            _ => counters::count_g_op(),
        }
        self.raw_op(rhs)
    }

    /// True iff this is the neutral element.
    fn is_identity(&self) -> bool {
        *self == Self::identity()
    }

    /// Exponentiation by a scalar (`a^s`), variable time.
    fn pow(&self, exp: &Self::Scalar) -> Self {
        match Self::KIND {
            GroupKind::Target => counters::count_gt_pow(),
            _ => counters::count_g_pow(),
        }
        let limbs = exp.to_canonical_limbs();
        self.pow_vartime_limbs(&limbs)
    }

    /// Exponentiation by a little-endian limb slice (uninstrumented; used
    /// internally for cofactor clearing and subgroup checks, and as the
    /// engine behind [`Self::pow`]).
    ///
    /// Sliding-window recoding over a table of odd powers
    /// `self, self³, …, self^{2^w−1}`: the same number of doublings as the
    /// binary chain but ~`nbits/(w+1)` general operations instead of
    /// ~`nbits/2`, for `2^{w−1}` precomputed multiples. Correct for
    /// **arbitrary** slices, including values at or above the group order
    /// (the subgroup check exponentiates by `r` itself, cofactor clearing
    /// by `(p+1)/r`).
    fn pow_vartime_limbs(&self, exp: &[u64]) -> Self {
        let nbits = dlr_math::limbs::bits_slice(exp);
        if nbits == 0 {
            return Self::identity();
        }
        // Width by exponent size: the odd-powers table costs 2^{w-1} ops,
        // amortized only over long enough chains.
        let w: u32 = match nbits {
            0..=31 => 2,
            32..=95 => 3,
            96..=255 => 4,
            _ => 5,
        };
        // table[i] = self^(2i+1)
        let sq = self.raw_double();
        let mut table = Vec::with_capacity(1usize << (w - 1));
        table.push(*self);
        for i in 1..(1usize << (w - 1)) {
            let prev = table[i - 1];
            table.push(prev.raw_op(&sq));
        }
        let bit = |k: u32| (exp[(k / 64) as usize] >> (k % 64)) & 1 == 1;
        let mut acc = Self::identity();
        let mut i = nbits as i64 - 1;
        while i >= 0 {
            if !bit(i as u32) {
                acc = acc.raw_double();
                i -= 1;
                continue;
            }
            // Greedy window [j, i], ending at a set bit so the digit is odd.
            let mut j = (i + 1 - w as i64).max(0);
            while !bit(j as u32) {
                j += 1;
            }
            let width = (i - j + 1) as usize;
            let digit = dlr_math::limbs::window(exp, j as usize, width);
            for _ in 0..width {
                acc = acc.raw_double();
            }
            acc = acc.raw_op(&table[digit >> 1]);
            i = j - 1;
        }
        acc
    }

    /// `generator()^exp` — the fixed-base half of DLR encryption
    /// (`g^t` of `Enc_pk(m) = (g^t, m·z^t)`). Backends override this with
    /// cached precomputed comb tables ([`crate::fixedbase::FixedBase`]);
    /// the returned element and the counter bump are identical to
    /// `Self::generator().pow(exp)` by construction, so instrumentation
    /// cannot tell the paths apart.
    fn generator_pow(exp: &Self::Scalar) -> Self {
        Self::generator().pow(exp)
    }

    /// Build any process-wide fixed-base tables behind
    /// [`Self::generator_pow`] now instead of on first use — servers call
    /// this off the hot path (outside generation locks) so steady-state
    /// traffic never pays precompute. Default: nothing to build.
    fn warm_generator_tables() {}

    /// Exponentiation with an **operation-schedule independent of the
    /// exponent bits**: a Montgomery ladder over the full scalar bit
    /// length, performing exactly one `raw_op` and one `raw_double` per
    /// bit. This removes the operation-count/timing channel of
    /// [`Self::pow`]; residual leakage through branch prediction and
    /// memory placement remains (no constant-time swap — documented
    /// best-effort, consistent with the paper's memory-leakage model).
    fn pow_ladder(&self, exp: &Self::Scalar) -> Self {
        match Self::KIND {
            GroupKind::Target => counters::count_gt_pow(),
            _ => counters::count_g_pow(),
        }
        let limbs = exp.to_canonical_limbs();
        let nbits = Self::Scalar::modulus_bits();
        let mut r0 = Self::identity();
        let mut r1 = *self;
        let mut i = nbits;
        while i > 0 {
            i -= 1;
            let bit = (limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1;
            if bit {
                r0 = r0.raw_op(&r1);
                r1 = r1.raw_double();
            } else {
                r1 = r0.raw_op(&r1);
                r0 = r0.raw_double();
            }
        }
        r0
    }

    /// `a / b = a · b^{-1}`.
    fn div(&self, rhs: &Self) -> Self {
        self.op(&rhs.inverse())
    }

    /// Exponentiation by a small integer.
    fn pow_u64(&self, e: u64) -> Self {
        self.pow(&Self::Scalar::from_u64(e))
    }

    /// `∏ basesᵢ^{expsᵢ}` — multi-exponentiation via the size-adaptive
    /// dispatcher (see [`crate::multiexp`]): Pippenger bucket windows for
    /// wide batches, shared-doubling Straus interleaving below the
    /// crossover. Counted as `bases.len()` exponentiations.
    ///
    /// # Panics
    ///
    /// Panics if `bases` and `exps` have different lengths.
    fn product_of_powers(bases: &[Self], exps: &[Self::Scalar]) -> Self {
        assert_eq!(bases.len(), exps.len(), "bases/exps length mismatch");
        for _ in 0..bases.len() {
            match Self::KIND {
                GroupKind::Target => counters::count_gt_pow(),
                _ => counters::count_g_pow(),
            }
        }
        crate::multiexp::multiexp(bases, exps)
    }
}

/// A bilinear map `e : G1 × G2 → GT` between prime-order groups sharing a
/// scalar field.
///
/// The paper's parameter generator `G(1^n)` outputs a **symmetric**
/// (Type-1) map — instantiated here by the supersingular parameter sets,
/// where `G1 = G2`. The trait is stated asymmetrically so the same scheme
/// code also runs over Type-3 curves (BLS12-381 in `dlr-bls12`), with the
/// scheme's role assignment: ciphertext components in `G1`, key-share
/// components in `G2`.
pub trait Pairing: Sized + Send + Sync + 'static {
    /// Common scalar field (`Z_p` in the paper).
    type Scalar: PrimeField;
    /// First pairing slot (ciphertext side).
    type G1: Group<Scalar = Self::Scalar>;
    /// Second pairing slot (key side; equals `G1` for Type-1 curves).
    type G2: Group<Scalar = Self::Scalar>;
    /// Target group `GT`, generated by `e(g, h)`.
    type Gt: Group<Scalar = Self::Scalar>;
    /// Parameter-set name (e.g. `"SS512"`).
    const NAME: &'static str;

    /// A first pairing argument with reusable precomputation attached
    /// (cached Miller line coefficients for the supersingular backend).
    /// Backends without a prepared form use `G1` itself.
    type Prepared: Clone + Send + Sync + 'static;

    /// The bilinear map. Bilinearity: `e(u^a, v^b) = e(u, v)^{ab}`;
    /// non-degeneracy: `e(g, h)` generates `GT` for generators `g, h`.
    fn pair(p: &Self::G1, q: &Self::G2) -> Self::Gt;

    /// `e(g, h)` for the fixed generators (cached by implementations).
    fn pair_generators() -> Self::Gt {
        Self::pair(&Self::G1::generator(), &Self::G2::generator())
    }

    /// Precompute the reusable part of pairings with fixed first slot `p`.
    /// Not itself a pairing: bumps no counter.
    fn prepare(p: &Self::G1) -> Self::Prepared;

    /// `e(p, q)` where `p` was [`prepare`](Self::prepare)d. Must equal
    /// [`pair`](Self::pair) exactly (same value, one `pairings` count).
    fn pair_prepared(prep: &Self::Prepared, q: &Self::G2) -> Self::Gt;

    /// `[e(p, q) for q in qs]` sharing `p`'s precomputation. Counts one
    /// pairing per element of `qs`; backends may batch the final
    /// exponentiations and fan the evaluations out over worker threads
    /// (with counter deltas merged back, see `dlr-curve`'s `parallel`
    /// module) — the results and op counts never change.
    fn multi_pair_prepared(prep: &Self::Prepared, qs: &[Self::G2]) -> Vec<Self::Gt> {
        qs.iter().map(|q| Self::pair_prepared(prep, q)).collect()
    }

    /// `[e(p, q) for q in qs]` — prepare `p` once, then evaluate.
    fn multi_pair(p: &Self::G1, qs: &[Self::G2]) -> Vec<Self::Gt> {
        Self::multi_pair_prepared(&Self::prepare(p), qs)
    }

    /// A **second**-slot pairing argument with reusable precomputation
    /// attached — the per-key fixed arguments (key-share coordinates) live
    /// in this slot, so their preparations are cached across requests while
    /// the ciphertext side stays fresh. Backends without a prepared form
    /// use `G2` itself.
    type PreparedQ: Clone + Send + Sync + 'static;

    /// Precompute the reusable part of pairings with fixed **second** slot
    /// `q`. Not itself a pairing: bumps no counter.
    fn prepare_q(q: &Self::G2) -> Self::PreparedQ;

    /// `e(p, q)` where `q` was [`prepare_q`](Self::prepare_q)'d. Must equal
    /// [`pair`](Self::pair) exactly (same value, one `pairings` count).
    fn pair_prepared_q(p: &Self::G1, prep: &Self::PreparedQ) -> Self::Gt;

    /// `[e(p, q) for q in preps]` sharing `p` across many prepared second
    /// slots. Counts one pairing per element; backends may batch the final
    /// exponentiations.
    fn multi_pair_prepared_q(p: &Self::G1, preps: &[Self::PreparedQ]) -> Vec<Self::Gt> {
        preps
            .iter()
            .map(|prep| Self::pair_prepared_q(p, prep))
            .collect()
    }

    /// `∏ e(pᵢ, qᵢ)`. Counts one pairing per constituent and **no** target
    /// group multiplications — backends share the Miller squaring chain and
    /// apply a single final exponentiation, so the combining multiplies are
    /// an artefact of the algorithm, not protocol-level `GT` work. The
    /// default implementation folds [`pair`](Self::pair) with the
    /// uninstrumented group op to keep those semantics.
    fn pairing_product(pairs: &[(Self::G1, Self::G2)]) -> Self::Gt {
        pairs.iter().fold(Self::Gt::identity(), |acc, (p, q)| {
            acc.raw_op(&Self::pair(p, q))
        })
    }
}
