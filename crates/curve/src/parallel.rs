//! Opt-in parallel fan-out for batched pairing evaluations.
//!
//! Disabled by default (thread count `0`): every batched operation runs
//! inline on the calling thread and behaves exactly as before. Callers that
//! want wall-clock speedups on wide fan-outs (e.g. the `κ+1` coordinate
//! pairings per DLR decryption share) opt in with
//! [`set_parallel_threads`].
//!
//! ## Exact operation accounting
//!
//! The op counters ([`crate::counters`]) and the `dlr-metrics` span stack
//! are thread-local, so naively spawning workers would silently drop their
//! operations from the calling span's report. The fan-out here instead
//! runs every worker inside [`counters::measure`] and replays each worker's
//! delta into the calling thread via [`counters::add_report`] after the
//! join — the merged span deltas are **byte-identical** to a sequential
//! run. Workers never open metrics spans of their own.

use crate::counters;
use core::sync::atomic::{AtomicUsize, Ordering};

static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the worker-thread budget for batched pairing fan-out.
///
/// `0` or `1` disables parallelism (the default). The budget is global and
/// read at each batched call; it caps, not fixes, the worker count — a
/// batch of `n` items uses at most `min(threads, n)` workers.
pub fn set_parallel_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The current worker-thread budget (`0` = parallelism off).
pub fn parallel_threads() -> usize {
    THREADS.load(Ordering::Relaxed)
}

/// Map `chunk_fn` over `items`, preserving order, splitting into at most
/// [`parallel_threads`] contiguous chunks on scoped worker threads.
///
/// `chunk_fn` must be pure modulo the op counters: it is invoked once per
/// chunk (once with all of `items` when parallelism is off), and each
/// worker's counter delta is replayed onto the calling thread.
pub(crate) fn fan_out_chunks<T, U, F>(items: &[T], chunk_fn: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> Vec<U> + Sync,
{
    let threads = parallel_threads().min(items.len());
    if threads < 2 {
        return chunk_fn(items);
    }
    let chunk_len = items.len().div_ceil(threads);
    let per_worker: Vec<(Vec<U>, counters::OpsReport)> = crossbeam::thread::scope(|s| {
        let chunk_fn = &chunk_fn;
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| s.spawn(move || counters::measure(|| chunk_fn(chunk))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pairing fan-out worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for (vals, ops) in per_worker {
        counters::add_report(ops);
        out.extend(vals);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Restore the global thread budget even if the test body panics.
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            set_parallel_threads(0);
        }
    }

    #[test]
    fn fan_out_preserves_order_and_merges_counters() {
        let _guard = Guard;
        let items: Vec<u64> = (0..23).collect();
        let work = |chunk: &[u64]| -> Vec<u64> {
            chunk
                .iter()
                .map(|x| {
                    counters::count_pairing();
                    x * 2
                })
                .collect()
        };

        set_parallel_threads(0);
        let (seq, seq_ops) = counters::measure(|| fan_out_chunks(&items, work));

        set_parallel_threads(4);
        let (par, par_ops) = counters::measure(|| fan_out_chunks(&items, work));

        assert_eq!(seq, par);
        assert_eq!(seq_ops, par_ops);
        assert_eq!(par_ops.pairings, items.len() as u64);
    }

    #[test]
    fn fan_out_handles_more_threads_than_items() {
        let _guard = Guard;
        set_parallel_threads(16);
        let out = fan_out_chunks(&[1u8, 2], |c| c.to_vec());
        assert_eq!(out, vec![1, 2]);
        let empty: Vec<u8> = fan_out_chunks(&[], |c: &[u8]| c.to_vec());
        assert!(empty.is_empty());
    }
}
