//! Mini Schnorr groups: prime-order subgroups of `Z_P^*` with *tiny* order.
//!
//! These groups are deliberately insecure — their whole point is that the
//! discrete logarithm is easy, so the exact-entropy experiments (F5 in
//! EXPERIMENTS.md) can enumerate the full key space of Πss/HPSKE and compute
//! the average min-entropy `H̃∞(·|leakage)` **exactly**, validating the
//! leftover-hash-lemma margin of Definition 5.1(2) numerically.
//!
//! They also serve as cheap `Group` instances for property tests of the
//! generic scheme code.

use crate::traits::{Group, GroupKind};
use core::marker::PhantomData;
use dlr_math::{define_prime_field, PrimeField};
use rand::RngCore;

define_prime_field!(
    /// Scalar field of order 17.
    pub struct Fr17, 1, "0x11"
);
define_prime_field!(
    /// Scalar field of order 251.
    pub struct Fr251, 1, "0xfb"
);
define_prime_field!(
    /// Scalar field of order 1009.
    pub struct Fr1009, 1, "0x3f1"
);

/// Parameters of a mini group: subgroup of order `R` inside `Z_P^*`.
pub trait MiniParams:
    Sized + Copy + Clone + core::fmt::Debug + PartialEq + Eq + core::hash::Hash + Send + Sync + Default + 'static
{
    /// Scalar field (prime subgroup order).
    type Fr: PrimeField;
    /// The ambient prime modulus `P` (fits in `u64`).
    const P: u64;
    /// Subgroup order `r` (`r | P − 1`).
    const R: u64;
    /// A generator of the order-`r` subgroup.
    const H: u64;
    /// Name for diagnostics.
    const NAME: &'static str;
}

/// Mini group of order 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mini17;
impl MiniParams for Mini17 {
    type Fr = Fr17;
    const P: u64 = 4_398_046_512_053;
    const R: u64 = 17;
    const H: u64 = 481_375_420_476;
    const NAME: &'static str = "MINI17";
}

/// Mini group of order 251.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mini251;
impl MiniParams for Mini251 {
    type Fr = Fr251;
    const P: u64 = 4_398_046_513_163;
    const R: u64 = 251;
    const H: u64 = 1_456_802_961_573;
    const NAME: &'static str = "MINI251";
}

/// Mini group of order 1009.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mini1009;
impl MiniParams for Mini1009 {
    type Fr = Fr1009;
    const P: u64 = 4_398_046_534_621;
    const R: u64 = 1009;
    const H: u64 = 3_237_106_488_104;
    const NAME: &'static str = "MINI1009";
}

/// An element of the order-`r` subgroup of `Z_P^*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModGroup<M: MiniParams> {
    value: u64,
    _marker: PhantomData<M>,
}

impl<M: MiniParams> Default for ModGroup<M> {
    fn default() -> Self {
        Self::identity()
    }
}

fn mul_mod(a: u64, b: u64, p: u64) -> u64 {
    ((a as u128 * b as u128) % p as u128) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, p: u64) -> u64 {
    let mut acc = 1u64;
    base %= p;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, p);
        }
        base = mul_mod(base, base, p);
        exp >>= 1;
    }
    acc
}

impl<M: MiniParams> ModGroup<M> {
    /// Raw subgroup value in `Z_P^*`.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Construct from a raw value, verifying subgroup membership.
    pub fn from_value(value: u64) -> Option<Self> {
        if value == 0 || value >= M::P {
            return None;
        }
        if pow_mod(value, M::R, M::P) != 1 {
            return None;
        }
        Some(Self {
            value,
            _marker: PhantomData,
        })
    }

    /// Enumerate all `r` elements of the group (feasible: `r` is tiny).
    pub fn iter_elements() -> impl Iterator<Item = Self> {
        (0..M::R).map(|k| Self::generator().pow_vartime_limbs(&[k]))
    }

    /// Brute-force discrete logarithm to the generator base — this group
    /// exists so that experiments *can* do this.
    pub fn dlog(&self) -> u64 {
        let g = Self::generator();
        let mut acc = Self::identity();
        for k in 0..M::R {
            if acc == *self {
                return k;
            }
            acc = acc.raw_op(&g);
        }
        unreachable!("element not in subgroup despite invariant")
    }
}

impl<M: MiniParams> Group for ModGroup<M> {
    type Scalar = M::Fr;
    const NAME: &'static str = M::NAME;
    const KIND: GroupKind = GroupKind::Plain;

    fn identity() -> Self {
        Self {
            value: 1,
            _marker: PhantomData,
        }
    }

    fn generator() -> Self {
        Self {
            value: M::H,
            _marker: PhantomData,
        }
    }

    fn raw_op(&self, rhs: &Self) -> Self {
        Self {
            value: mul_mod(self.value, rhs.value, M::P),
            _marker: PhantomData,
        }
    }

    fn inverse(&self) -> Self {
        // order r: x^{r-1} = x^{-1}
        Self {
            value: pow_mod(self.value, M::R - 1, M::P),
            _marker: PhantomData,
        }
    }

    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // NOTE: mini groups exist for exhaustive experiments where dlogs are
        // recoverable by design, so sampling via a random exponent is fine
        // here (unlike the curve groups, where `random` must avoid creating
        // a known dlog).
        let k = rng.next_u64() % M::R;
        Self::generator().pow_vartime_limbs(&[k])
    }

    fn to_bytes(&self) -> Vec<u8> {
        self.value.to_be_bytes().to_vec()
    }

    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Self::from_value(u64::from_be_bytes(arr))
    }

    fn byte_len() -> usize {
        8
    }

    fn is_in_subgroup(&self) -> bool {
        pow_mod(self.value, M::R, M::P) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_math::FieldElement;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn generator_has_exact_order() {
        fn check<M: MiniParams>() {
            let g = ModGroup::<M>::generator();
            assert!(g.is_in_subgroup());
            assert_ne!(g, ModGroup::<M>::identity());
            assert_eq!(g.pow_vartime_limbs(&[M::R]), ModGroup::<M>::identity());
        }
        check::<Mini17>();
        check::<Mini251>();
        check::<Mini1009>();
    }

    #[test]
    fn enumeration_is_complete() {
        let all: HashSet<_> = ModGroup::<Mini17>::iter_elements().collect();
        assert_eq!(all.len(), 17);
        let all: HashSet<_> = ModGroup::<Mini251>::iter_elements().collect();
        assert_eq!(all.len(), 251);
    }

    #[test]
    fn dlog_inverts_pow() {
        let g = ModGroup::<Mini251>::generator();
        for k in [0u64, 1, 2, 100, 250] {
            assert_eq!(g.pow_vartime_limbs(&[k]).dlog(), k);
        }
    }

    #[test]
    fn group_laws_and_scalars() {
        let mut r = rng();
        let a = ModGroup::<Mini1009>::random(&mut r);
        let b = ModGroup::<Mini1009>::random(&mut r);
        assert_eq!(a.op(&b), b.op(&a));
        assert_eq!(a.op(&a.inverse()), ModGroup::<Mini1009>::identity());
        let s = Fr1009::random(&mut r);
        let t = Fr1009::random(&mut r);
        assert_eq!(a.pow(&s).pow(&t), a.pow(&(s * t)));
        assert_eq!(a.pow(&s).op(&a.pow(&t)), a.pow(&(s + t)));
    }

    #[test]
    fn multiexp_matches_naive_mini() {
        let mut r = rng();
        let bases: Vec<ModGroup<Mini251>> =
            (0..7).map(|_| ModGroup::random(&mut r)).collect();
        let exps: Vec<Fr251> = (0..7).map(|_| Fr251::random(&mut r)).collect();
        assert_eq!(
            ModGroup::product_of_powers(&bases, &exps),
            crate::multiexp::naive(&bases, &exps)
        );
    }

    #[test]
    fn serialization_validates_membership() {
        let g = ModGroup::<Mini17>::generator();
        assert_eq!(ModGroup::<Mini17>::from_bytes(&g.to_bytes()), Some(g));
        // 2 is (almost surely) not in the order-17 subgroup
        assert_eq!(ModGroup::<Mini17>::from_value(2), None);
        assert_eq!(ModGroup::<Mini17>::from_value(0), None);
        assert_eq!(ModGroup::<Mini17>::from_value(M_P), None);
        const M_P: u64 = <Mini17 as MiniParams>::P;
    }
}
