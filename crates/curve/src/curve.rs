//! The pairing source group `G`: the order-`r` subgroup of the
//! supersingular curve `E : y² = x³ + x` over `F_p`.
//!
//! Points are held in Jacobian coordinates `(X, Y, Z)` with affine
//! `(X/Z², Y/Z³)` and the point at infinity encoded by `Z = 0`. Equality
//! and hashing are defined on the underlying affine point, so the same
//! group element in different coordinates compares equal.

use crate::fixedbase::FixedBase;
use crate::params::SsParams;
use crate::traits::{Group, GroupKind};
use core::hash::{Hash, Hasher};
use core::marker::PhantomData;
use dlr_math::{FieldElement, PrimeField};
use rand::RngCore;

/// An element of the source group `G` (Jacobian coordinates).
#[derive(Clone, Copy, Debug)]
pub struct G<P: SsParams> {
    x: P::Fp,
    y: P::Fp,
    z: P::Fp,
    _marker: PhantomData<P>,
}

impl<P: SsParams> Default for G<P> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<P: SsParams> G<P> {
    fn jacobian(x: P::Fp, y: P::Fp, z: P::Fp) -> Self {
        Self {
            x,
            y,
            z,
            _marker: PhantomData,
        }
    }

    /// Construct from affine coordinates, verifying the curve equation.
    pub fn from_affine(x: P::Fp, y: P::Fp) -> Option<Self> {
        if !Self::is_on_curve_affine(&x, &y) {
            return None;
        }
        Some(Self::jacobian(x, y, P::Fp::one()))
    }

    /// Affine coordinates, or `None` for the point at infinity.
    pub fn to_affine(&self) -> Option<(P::Fp, P::Fp)> {
        if self.z.is_zero() {
            return None;
        }
        let zinv = self.z.inverse().expect("nonzero z");
        let zinv2 = zinv.square();
        let zinv3 = zinv2 * zinv;
        Some((self.x * zinv2, self.y * zinv3))
    }

    /// Curve membership for affine coordinates: `y² = x³ + x`.
    pub fn is_on_curve_affine(x: &P::Fp, y: &P::Fp) -> bool {
        y.square() == x.square() * *x + *x
    }

    /// True iff this point satisfies the curve equation (in Jacobian form:
    /// `Y² = X³ + X·Z⁴`).
    pub fn is_on_curve(&self) -> bool {
        if self.z.is_zero() {
            return true;
        }
        let z2 = self.z.square();
        let z4 = z2.square();
        self.y.square() == self.x.square() * self.x + self.x * z4
    }

    fn double_internal(&self) -> Self {
        if self.z.is_zero() || self.y.is_zero() {
            return Self::identity();
        }
        // dbl-2007-bl for y² = x³ + a·x with a = 1
        let xx = self.x.square();
        let yy = self.y.square();
        let yyyy = yy.square();
        let zz = self.z.square();
        let s = ((self.x + yy).square() - xx - yyyy).double();
        let m = xx.double() + xx + zz.square(); // 3·XX + a·ZZ², a = 1
        let t = m.square() - s.double();
        let y3 = m * (s - t) - yyyy.double().double().double();
        let z3 = (self.y + self.z).square() - yy - zz;
        Self::jacobian(t, y3, z3)
    }

    fn add_internal(&self, rhs: &Self) -> Self {
        if self.z.is_zero() {
            return *rhs;
        }
        if rhs.z.is_zero() {
            return *self;
        }
        // add-2007-bl
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x * z2z2;
        let u2 = rhs.x * z1z1;
        let s1 = self.y * rhs.z * z2z2;
        let s2 = rhs.y * self.z * z1z1;
        if u1 == u2 {
            if s1 == s2 {
                return self.double_internal();
            }
            return Self::identity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + rhs.z).square() - z1z1 - z2z2) * h;
        Self::jacobian(x3, y3, z3)
    }

    /// Mixed addition `self + rhs` for an **affine** `rhs` (`Z₂ = 1`, not
    /// infinity): madd-2007-bl, 7M + 4S against the 11M + 5S of
    /// [`Self::add_internal`]. The multiexp inner loop batch-normalizes
    /// its window tables once to earn this discount on every table
    /// addition.
    fn add_mixed(&self, rhs: &Self) -> Self {
        debug_assert!(rhs.z == P::Fp::one(), "add_mixed rhs must be affine");
        if self.z.is_zero() {
            return *rhs;
        }
        let z1z1 = self.z.square();
        let u2 = rhs.x * z1z1;
        let s2 = rhs.y * self.z * z1z1;
        if self.x == u2 {
            if self.y == s2 {
                return self.double_internal();
            }
            return Self::identity();
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double();
        let j = h * i;
        let r = (s2 - self.y).double();
        let v = self.x * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        Self::jacobian(x3, y3, z3)
    }

    /// Normalize a batch to affine coordinates (`Z = 1`) with a single
    /// field inversion (Montgomery's trick). Points at infinity are left
    /// untouched; callers must keep skipping them.
    fn batch_normalize(points: &mut [Self]) {
        let mut prefix = Vec::with_capacity(points.len());
        let mut acc = P::Fp::one();
        for p in points.iter() {
            prefix.push(acc);
            if !p.z.is_zero() {
                acc *= p.z;
            }
        }
        let mut suffix = acc.inverse().expect("product of nonzero z is nonzero");
        for (p, pre) in points.iter_mut().zip(prefix).rev() {
            if p.z.is_zero() {
                continue;
            }
            let zinv = suffix * pre;
            suffix *= p.z;
            let zinv2 = zinv.square();
            p.x *= zinv2;
            p.y = p.y * zinv2 * zinv;
            p.z = P::Fp::one();
        }
    }

    /// Interleaved signed-window (wNAF) multi-exponentiation.
    ///
    /// The curve-specialized engine behind [`Group::product_of_powers`]:
    /// point negation is free here (negate `y`), so signed recoding
    /// ([`dlr_math::limbs::wnaf_digits`]) halves the window tables to odd
    /// multiples and thins nonzero digits to `1/(w+1)` per bit, and the
    /// tables are batch-normalized so every window addition runs the
    /// cheaper [`Self::add_mixed`] formula. Wide batches where per-base
    /// tables stop paying (`ℓ = 3κ` in the heavy-leakage profiles) are
    /// routed to the table-free [`crate::multiexp::pippenger_raw`] by
    /// comparing both engines' deterministic cost models.
    fn wnaf_multiexp(bases: &[Self], exps: &[P::Fr]) -> Self {
        use dlr_math::limbs::{bits_slice, wnaf_digits};
        let mut pts: Vec<Self> = Vec::with_capacity(bases.len());
        let mut exp_limbs: Vec<Vec<u64>> = Vec::with_capacity(bases.len());
        let mut max_bits = 0usize;
        for (b, e) in bases.iter().zip(exps) {
            let limbs = e.to_canonical_limbs();
            let nbits = bits_slice(&limbs) as usize;
            if nbits == 0 || b.z.is_zero() {
                continue;
            }
            max_bits = max_bits.max(nbits);
            pts.push(*b);
            exp_limbs.push(limbs);
        }
        if pts.is_empty() {
            return Self::identity();
        }
        let n = pts.len();
        let (w, wnaf_cost) = wnaf_plan(n, max_bits);
        let wp = crate::multiexp::best_window(n, max_bits, crate::multiexp::pippenger_cost);
        if crate::multiexp::pippenger_cost(n, max_bits, wp) * 100 < wnaf_cost {
            return crate::multiexp::pippenger_raw(bases, exps);
        }

        let nafs: Vec<Vec<i8>> = exp_limbs.iter().map(|l| wnaf_digits(l, w)).collect();
        let max_len = nafs.iter().map(Vec::len).max().expect("nonempty batch");

        // Odd multiples 1·B, 3·B, …, (2^{w−1}−1)·B per base, then one
        // batch normalization so the main loop adds affine entries. Small-
        // order bases (cofactor components) can collapse an odd multiple
        // to infinity — those entries are skipped at lookup time.
        let tsize = 1usize << (w - 2);
        let mut table: Vec<Self> = Vec::with_capacity(n * tsize);
        for b in &pts {
            let twice = b.double_internal();
            let mut cur = *b;
            table.push(cur);
            for _ in 1..tsize {
                cur = cur.add_internal(&twice);
                table.push(cur);
            }
        }
        Self::batch_normalize(&mut table);

        let mut acc = Self::identity();
        for pos in (0..max_len).rev() {
            acc = acc.double_internal();
            for (i, naf) in nafs.iter().enumerate() {
                let Some(&d) = naf.get(pos) else { continue };
                if d == 0 {
                    continue;
                }
                let entry = &table[i * tsize + (d.unsigned_abs() as usize - 1) / 2];
                if entry.z.is_zero() {
                    continue;
                }
                acc = if d > 0 {
                    acc.add_mixed(entry)
                } else {
                    acc.add_mixed(&Self::jacobian(entry.x, -entry.y, entry.z))
                };
            }
        }
        acc
    }

    /// Compressed serialization: a tag byte (0 = infinity, 2/3 = sign of
    /// `y`) plus the x-coordinate — roughly half the uncompressed size.
    pub fn to_bytes_compressed(&self) -> Vec<u8> {
        let len = 1 + P::Fp::byte_len();
        match self.to_affine() {
            None => vec![0u8; len],
            Some((x, y)) => {
                let neg = -y;
                let sign = y.to_bytes_be() > neg.to_bytes_be();
                let mut out = Vec::with_capacity(len);
                out.push(if sign { 3 } else { 2 });
                out.extend_from_slice(&x.to_bytes_be());
                out
            }
        }
    }

    /// Parse a compressed point, recovering `y` via a square root.
    pub fn from_bytes_compressed(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 1 + P::Fp::byte_len() {
            return None;
        }
        match bytes[0] {
            0 => bytes.iter().all(|&b| b == 0).then(Self::identity),
            tag @ (2 | 3) => {
                let x = P::Fp::from_bytes_be(&bytes[1..])?;
                let rhs = x.square() * x + x;
                let y = rhs.sqrt()?;
                let neg = -y;
                let y_sign = y.to_bytes_be() > neg.to_bytes_be();
                let want_sign = tag == 3;
                let y = if y_sign == want_sign { y } else { neg };
                Some(Self::jacobian(x, y, P::Fp::one()))
            }
            _ => None,
        }
    }

    /// Map arbitrary bytes to a group element (try-and-increment +
    /// cofactor clearing). Deterministic in `(domain, msg)`.
    pub fn hash_to_group(domain: &[u8], msg: &[u8]) -> Self {
        let xlen = P::Fp::byte_len() + 16; // oversample to smooth the mod-p bias
        // One HKDF-Extract for the whole counter walk: each attempt only
        // pays the Expand blocks (`Prk::expand` output is byte-identical
        // to per-attempt `hkdf` calls with the same info string).
        let prk = dlr_hash::hkdf::Prk::new(domain, msg);
        for ctr in 0u32..u32::MAX {
            let mut info = b"dlr-h2c".to_vec();
            info.extend_from_slice(&ctr.to_be_bytes());
            let bytes = prk.expand(&info, xlen + 1);
            let x = P::Fp::from_bytes_be_reduced(&bytes[..xlen]);
            let rhs = x.square() * x + x;
            if let Some(y) = rhs.sqrt() {
                // pick the sign from the last derived byte for determinism
                let y = if bytes[xlen] & 1 == 1 { -y } else { y };
                let point = Self::jacobian(x, y, P::Fp::one());
                let cleared = point.pow_vartime_limbs(P::COFACTOR);
                if !cleared.z.is_zero() {
                    return cleared;
                }
            }
        }
        unreachable!("hash_to_group exhausted the counter space")
    }
}

fn derive_generator<P: SsParams>() -> G<P> {
    G::<P>::hash_to_group(P::GENERATOR_DOMAIN, b"generator")
}

/// Deterministic wNAF plan for a batch shape `(n, bits)`: the window width
/// and its modelled cost in scaled units (full Jacobian add = 100). Unlike
/// the unit-cost models in [`crate::multiexp`], this one weighs the three
/// curve formulas separately — measured on the supersingular fields the
/// mixed add (7M + 4S) runs at ~0.7× a full add (11M + 5S) and the double
/// (1M + 8S) at ~0.6× — because the whole point of the wNAF engine is to
/// shift work onto the cheaper two.
fn wnaf_plan(n: usize, bits: usize) -> (usize, usize) {
    const FULL: usize = 100;
    const MIXED: usize = 70;
    const DBL: usize = 60;
    const NORM: usize = 4; // per-entry share of the batch normalization
    let mut best = (2usize, usize::MAX);
    for w in 2..=8usize {
        let table = 1usize << (w - 2);
        let cost = n * (DBL + (table - 1) * FULL + table * NORM)
            + bits * DBL
            + n * (bits / (w + 1) + 1) * MIXED;
        if cost < best.1 {
            best = (w, cost);
        }
    }
    best
}

impl<P: SsParams> PartialEq for G<P> {
    fn eq(&self, other: &Self) -> bool {
        let self_inf = self.z.is_zero();
        let other_inf = other.z.is_zero();
        if self_inf || other_inf {
            return self_inf == other_inf;
        }
        // (X1/Z1², Y1/Z1³) == (X2/Z2², Y2/Z2³) cross-multiplied
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        self.x * z2z2 == other.x * z1z1
            && self.y * (z2z2 * other.z) == other.y * (z1z1 * self.z)
    }
}

impl<P: SsParams> Eq for G<P> {}

impl<P: SsParams> Hash for G<P> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the canonical affine form so Jacobian representatives of the
        // same point hash identically.
        match self.to_affine() {
            None => state.write_u8(0),
            Some((x, y)) => {
                state.write_u8(4);
                state.write(&x.to_bytes_be());
                state.write(&y.to_bytes_be());
            }
        }
    }
}

impl<P: SsParams> Group for G<P> {
    type Scalar = P::Fr;
    const NAME: &'static str = "G";
    const KIND: GroupKind = GroupKind::Source;

    fn identity() -> Self {
        Self::jacobian(P::Fp::one(), P::Fp::one(), P::Fp::zero())
    }

    fn generator() -> Self {
        // Typed per-params cache: the former global Mutex<HashMap> of
        // serialized coordinates re-parsed the point on every call.
        *P::caches().g_generator.get_or_init(derive_generator::<P>)
    }

    fn generator_pow(exp: &Self::Scalar) -> Self {
        P::caches()
            .g_table
            .get_or_init(|| FixedBase::new(&Self::generator()))
            .pow_fixed(exp)
    }

    fn warm_generator_tables() {
        let _ = P::caches()
            .g_table
            .get_or_init(|| FixedBase::new(&Self::generator()));
    }

    fn raw_op(&self, rhs: &Self) -> Self {
        self.add_internal(rhs)
    }

    fn raw_double(&self) -> Self {
        self.double_internal()
    }

    fn product_of_powers(bases: &[Self], exps: &[Self::Scalar]) -> Self {
        // Same semantic accounting as the trait default (`n` pows —
        // engine internals are uncounted), different engine: signed
        // windows and mixed additions only exist on a curve, so the
        // generic Straus/Pippenger dispatch is overridden here.
        assert_eq!(bases.len(), exps.len(), "bases/exps length mismatch");
        for _ in 0..bases.len() {
            crate::counters::count_g_pow();
        }
        Self::wnaf_multiexp(bases, exps)
    }

    fn inverse(&self) -> Self {
        Self::jacobian(self.x, -self.y, self.z)
    }

    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Hash fresh randomness to the curve: the resulting point has no
        // known discrete logarithm relative to anything.
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Self::hash_to_group(b"dlr-random-point", &seed)
    }

    fn to_bytes(&self) -> Vec<u8> {
        let len = Self::byte_len();
        match self.to_affine() {
            None => vec![0u8; len],
            Some((x, y)) => {
                let mut out = Vec::with_capacity(len);
                out.push(4);
                out.extend_from_slice(&x.to_bytes_be());
                out.extend_from_slice(&y.to_bytes_be());
                out
            }
        }
    }

    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::byte_len() {
            return None;
        }
        match bytes[0] {
            0 => {
                if bytes.iter().all(|&b| b == 0) {
                    Some(Self::identity())
                } else {
                    None
                }
            }
            4 => {
                let flen = P::Fp::byte_len();
                let x = P::Fp::from_bytes_be(&bytes[1..1 + flen])?;
                let y = P::Fp::from_bytes_be(&bytes[1 + flen..])?;
                Self::from_affine(x, y)
            }
            _ => None,
        }
    }

    fn byte_len() -> usize {
        1 + 2 * P::Fp::byte_len()
    }

    fn is_in_subgroup(&self) -> bool {
        if !self.is_on_curve() {
            return false;
        }
        let r_bytes = P::Fr::modulus_be_bytes();
        let mut limbs: Vec<u64> = Vec::new();
        let mut le = r_bytes;
        le.reverse();
        for ch in le.chunks(8) {
            let mut b = [0u8; 8];
            b[..ch.len()].copy_from_slice(ch);
            limbs.push(u64::from_le_bytes(b));
        }
        self.pow_vartime_limbs(&limbs).is_identity()
    }
}

impl<P: SsParams> dlr_math::Erase for G<P>
where
    P::Fp: dlr_math::Erase,
{
    fn erase(&mut self) {
        self.x.erase();
        self.y.erase();
        self.z.erase();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Ss512, Toy};
    use rand::SeedableRng;

    type GT = G<Toy>;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn generator_is_valid() {
        let g = GT::generator();
        assert!(g.is_on_curve());
        assert!(!g.is_identity());
        assert!(g.is_in_subgroup());
        // deterministic / cached
        assert_eq!(GT::generator(), GT::generator());
    }

    #[test]
    fn group_laws() {
        let mut r = rng();
        let a = GT::random(&mut r);
        let b = GT::random(&mut r);
        let c = GT::random(&mut r);
        assert_eq!(a.op(&b), b.op(&a));
        assert_eq!(a.op(&b).op(&c), a.op(&b.op(&c)));
        assert_eq!(a.op(&GT::identity()), a);
        assert_eq!(a.op(&a.inverse()), GT::identity());
        assert_eq!(a.raw_double(), a.op(&a));
    }

    #[test]
    fn scalar_mult_distributes() {
        let mut r = rng();
        let g = GT::random(&mut r);
        let s = <Toy as SsParams>::Fr::random(&mut r);
        let t = <Toy as SsParams>::Fr::random(&mut r);
        assert_eq!(g.pow(&s).op(&g.pow(&t)), g.pow(&(s + t)));
        assert_eq!(g.pow(&s).pow(&t), g.pow(&(s * t)));
        assert_eq!(g.pow(&<Toy as SsParams>::Fr::zero()), GT::identity());
        assert_eq!(g.pow(&<Toy as SsParams>::Fr::one()), g);
    }

    #[test]
    fn ladder_matches_pow() {
        let mut r = rng();
        let g = GT::random(&mut r);
        for _ in 0..5 {
            let s = <Toy as SsParams>::Fr::random(&mut r);
            assert_eq!(g.pow_ladder(&s), g.pow(&s));
        }
        assert_eq!(g.pow_ladder(&<Toy as SsParams>::Fr::zero()), GT::identity());
        assert_eq!(g.pow_ladder(&<Toy as SsParams>::Fr::one()), g);
    }

    #[test]
    fn order_annihilates() {
        let mut r = rng();
        let g = GT::random(&mut r);
        assert!(g.is_in_subgroup());
        // g^(r-1) · g == identity
        let rm1 = -<Toy as SsParams>::Fr::one();
        assert_eq!(g.pow(&rm1).op(&g), GT::identity());
    }

    #[test]
    fn serialization_roundtrip() {
        let mut r = rng();
        let a = GT::random(&mut r);
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), GT::byte_len());
        assert_eq!(GT::from_bytes(&bytes), Some(a));
        // identity
        let id = GT::identity();
        assert_eq!(GT::from_bytes(&id.to_bytes()), Some(id));
        // off-curve rejected
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        // either parses to a different valid point (unlikely) or None
        if let Some(p) = GT::from_bytes(&bad) {
            assert!(p.is_on_curve());
            assert_ne!(p, a);
        }
        // wrong length rejected
        assert_eq!(GT::from_bytes(&bytes[1..]), None);
        // garbage tag rejected
        let mut tagged = bytes;
        tagged[0] = 7;
        assert_eq!(GT::from_bytes(&tagged), None);
    }

    #[test]
    fn compressed_roundtrip() {
        let mut r = rng();
        for _ in 0..5 {
            let p = GT::random(&mut r);
            let c = p.to_bytes_compressed();
            assert_eq!(c.len(), 1 + <Toy as SsParams>::Fp::byte_len());
            assert_eq!(GT::from_bytes_compressed(&c), Some(p));
            // strictly smaller than uncompressed
            assert!(c.len() < p.to_bytes().len());
        }
        let id = GT::identity();
        assert_eq!(GT::from_bytes_compressed(&id.to_bytes_compressed()), Some(id));
        assert_eq!(GT::from_bytes_compressed(&[9u8; 17]), None);
        assert_eq!(GT::from_bytes_compressed(&[2u8]), None);
    }

    #[test]
    fn hash_to_group_is_deterministic_and_spread() {
        let p1 = GT::hash_to_group(b"domain", b"m1");
        let p2 = GT::hash_to_group(b"domain", b"m1");
        let p3 = GT::hash_to_group(b"domain", b"m2");
        let p4 = GT::hash_to_group(b"other", b"m1");
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert_ne!(p1, p4);
        assert!(p1.is_in_subgroup());
    }

    #[test]
    fn multiexp_matches_naive() {
        let mut r = rng();
        for n in [0usize, 1, 2, 5, 9] {
            let bases: Vec<GT> = (0..n).map(|_| GT::random(&mut r)).collect();
            let exps: Vec<_> = (0..n)
                .map(|_| <Toy as SsParams>::Fr::random(&mut r))
                .collect();
            let fast = GT::product_of_powers(&bases, &exps);
            let slow = crate::multiexp::naive(&bases, &exps);
            assert_eq!(fast, slow, "n={n}");
        }
    }

    #[test]
    fn equality_across_representations() {
        let mut r = rng();
        let a = GT::random(&mut r);
        let doubled = a.raw_double(); // non-trivial Z
        let affine = doubled.to_affine().unwrap();
        let normalized = GT::from_affine(affine.0, affine.1).unwrap();
        assert_eq!(doubled, normalized);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        doubled.hash(&mut h1);
        normalized.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn ss512_generator_smoke() {
        let g = G::<Ss512>::generator();
        assert!(g.is_on_curve());
        assert!(g.is_in_subgroup());
        let mut r = rng();
        let s = <Ss512 as SsParams>::Fr::random(&mut r);
        let h = g.pow(&s);
        assert!(h.is_on_curve());
        assert_eq!(G::<Ss512>::from_bytes(&h.to_bytes()), Some(h));
    }

    #[test]
    fn ops_are_counted() {
        let mut r = rng();
        let a = GT::random(&mut r);
        let s = <Toy as SsParams>::Fr::random(&mut r);
        let (_, report) = crate::counters::measure(|| {
            let _ = a.op(&a);
            let _ = a.pow(&s);
            let _ = GT::product_of_powers(&[a, a], &[s, s]);
        });
        assert_eq!(report.g_op, 1);
        assert_eq!(report.g_pow, 3); // 1 pow + 2 from the multiexp
    }
}
