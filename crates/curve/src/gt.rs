//! The pairing target group `GT`: the order-`r` subgroup `μ_r ⊂ F_{p²}*`.
//!
//! Every element produced by the pairing (and by [`Group::random`]) is
//! *unitary* (norm 1), which makes inversion a conjugation — the cheap
//! `GT` arithmetic is one reason encrypting into `GT` (as DLR does) is
//! practical.

use crate::fixedbase::FixedBase;
use crate::params::SsParams;
use crate::traits::{Group, GroupKind};
use crate::util::field_modulus_limbs;
use core::marker::PhantomData;
use dlr_math::{FieldElement, Fp2};
use rand::RngCore;

/// An element of `GT` (invariant: unitary, i.e. norm 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Gt<P: SsParams> {
    pub(crate) value: Fp2<P::Fp>,
    _marker: PhantomData<P>,
}

impl<P: SsParams> Default for Gt<P> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<P: SsParams> Gt<P> {
    pub(crate) fn from_unitary(value: Fp2<P::Fp>) -> Self {
        debug_assert!(value.is_unitary(), "Gt invariant: unitary element");
        Self {
            value,
            _marker: PhantomData,
        }
    }

    /// The underlying `F_{p²}` value.
    pub fn as_fp2(&self) -> &Fp2<P::Fp> {
        &self.value
    }
}

impl<P: SsParams> Group for Gt<P> {
    type Scalar = P::Fr;
    const NAME: &'static str = "GT";
    const KIND: GroupKind = GroupKind::Target;

    fn identity() -> Self {
        Self {
            value: Fp2::one(),
            _marker: PhantomData,
        }
    }

    fn generator() -> Self {
        // e(g, g) for the source-group generator g — generates GT by
        // non-degeneracy of the modified Tate pairing. Cached typed in the
        // per-params cell (the former global cache stored bytes and
        // re-deserialized per call).
        *P::caches().gt_generator.get_or_init(|| {
            let g = crate::curve::G::<P>::generator();
            let gt = crate::pairing::tate_pairing::<P>(&g, &g);
            assert!(!gt.is_identity(), "pairing degenerate on generator");
            gt
        })
    }

    fn generator_pow(exp: &Self::Scalar) -> Self {
        P::caches()
            .gt_table
            .get_or_init(|| FixedBase::new(&Self::generator()))
            .pow_fixed(exp)
    }

    fn warm_generator_tables() {
        let _ = P::caches()
            .gt_table
            .get_or_init(|| FixedBase::new(&Self::generator()));
    }

    fn raw_op(&self, rhs: &Self) -> Self {
        Self::from_unitary(self.value * rhs.value)
    }

    fn raw_double(&self) -> Self {
        Self::from_unitary(self.value.square())
    }

    fn inverse(&self) -> Self {
        Self::from_unitary(self.value.unitary_inverse())
    }

    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Project a random F_{p²}* element onto μ_r via the final
        // exponentiation map z ↦ z^{(p²−1)/r}; the result is uniform in GT
        // and carries no known discrete logarithm.
        loop {
            let z = Fp2::<P::Fp>::random(rng);
            if z.is_zero() {
                continue;
            }
            let gt = crate::pairing::final_exponentiation::<P>(z);
            if !gt.is_identity() {
                return gt;
            }
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        self.value.to_bytes_be()
    }

    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let value = Fp2::<P::Fp>::from_bytes_be(bytes)?;
        if !value.is_unitary() {
            return None;
        }
        Some(Self {
            value,
            _marker: PhantomData,
        })
    }

    fn byte_len() -> usize {
        Fp2::<P::Fp>::byte_len()
    }

    fn is_in_subgroup(&self) -> bool {
        self.value.is_unitary()
            && self
                .pow_vartime_limbs(&field_modulus_limbs::<P::Fr>())
                .is_identity()
    }
}

impl<P: SsParams> dlr_math::Erase for Gt<P>
where
    P::Fp: dlr_math::Erase,
{
    fn erase(&mut self) {
        self.value.erase();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Toy;
    use rand::SeedableRng;

    type T = Gt<Toy>;
    type Fr = <Toy as crate::params::SsParams>::Fr;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn group_laws() {
        let mut r = rng();
        let a = T::random(&mut r);
        let b = T::random(&mut r);
        assert_eq!(a.op(&b), b.op(&a));
        assert_eq!(a.op(&a.inverse()), T::identity());
        assert_eq!(a.op(&T::identity()), a);
        assert_eq!(a.raw_double(), a.op(&a));
    }

    #[test]
    fn random_lands_in_subgroup() {
        let mut r = rng();
        for _ in 0..5 {
            let a = T::random(&mut r);
            assert!(a.is_in_subgroup());
            assert!(!a.is_identity());
        }
    }

    #[test]
    fn exponent_arithmetic() {
        let mut r = rng();
        let a = T::random(&mut r);
        let s = Fr::random(&mut r);
        let t = Fr::random(&mut r);
        assert_eq!(a.pow(&s).op(&a.pow(&t)), a.pow(&(s + t)));
        assert_eq!(a.pow(&s).pow(&t), a.pow(&(s * t)));
    }

    #[test]
    fn serialization_roundtrip_and_validation() {
        let mut r = rng();
        let a = T::random(&mut r);
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), T::byte_len());
        assert_eq!(T::from_bytes(&bytes), Some(a));
        // a random non-unitary Fp2 element must be rejected
        let mut z = dlr_math::Fp2::<<Toy as crate::params::SsParams>::Fp>::random(&mut r);
        while z.is_unitary() {
            z = dlr_math::Fp2::random(&mut r);
        }
        assert_eq!(T::from_bytes(&z.to_bytes_be()), None);
    }

    #[test]
    fn generator_has_full_order() {
        let g = T::generator();
        assert!(!g.is_identity());
        assert!(g.is_in_subgroup());
        // g^(r-1) != identity (r prime, so any non-identity element has order r)
        let rm1 = -Fr::one();
        assert!(!g.pow(&rm1).is_identity());
        assert_eq!(g.pow(&rm1).op(&g), T::identity());
    }
}
