//! # dlr — distributed public key schemes secure against continual leakage
//!
//! A from-scratch Rust reproduction of *Akavia, Goldwasser, Hazay:
//! "Distributed Public Key Schemes Secure against Continual Leakage"*
//! (PODC 2012), including every substrate: a Type-1 pairing over a
//! supersingular curve, SHA-2/HMAC/HKDF and hash-based one-time
//! signatures, a two-party protocol runtime with an explicit public/secret
//! device-memory model, the continual-memory-leakage security game, and
//! the baseline schemes the paper compares against.
//!
//! This facade crate re-exports the workspace. Start with:
//!
//! * [`core::dlr`] — the DLR scheme (Construction 5.3);
//! * [`core::dibe`] / [`core::cca2`] — the DIBE and CCA2 extensions;
//! * [`core::storage`] — secure storage on leaky devices (§4.4);
//! * [`leakage::game`] — the Definition 3.2 security game, runnable;
//! * [`metrics`] — phase-level spans, group-operation counts and wire
//!   statistics for the protocols (see `crates/metrics/README.md`);
//! * [`server`] — the concurrent key-share service: keyring, epoch-driven
//!   refresh, durable shares, and the closed-loop load generator;
//! * [`cluster`] — the key-sharded multi-replica fleet: supervisor,
//!   routed clients over the topology ring, per-shard epoch coordination,
//!   and fault-injecting fleet load generation;
//! * the `examples/` directory for end-to-end scenarios.
//!
//! ```
//! use dlr::prelude::*;
//!
//! let mut rng = rand::thread_rng();
//! let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 64);
//! let (pk, sk1, sk2) = dlr_scheme::keygen::<Toy, _>(params, &mut rng);
//! let mut p1 = dlr_scheme::Party1::new(pk.clone(), sk1);
//! let mut p2 = dlr_scheme::Party2::new(pk.clone(), sk2);
//! let m = <Toy as Pairing>::Gt::random(&mut rng);
//! let ct = dlr_scheme::encrypt(&pk, &m, &mut rng);
//! assert_eq!(dlr_scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut rng)?, m);
//! # Ok::<(), dlr::core::CoreError>(())
//! ```

pub use dlr_baselines as baselines;
pub use dlr_bls12 as bls12;
pub use dlr_cluster as cluster;
pub use dlr_core as core;
pub use dlr_curve as curve;
pub use dlr_hash as hash;
pub use dlr_leakage as leakage;
pub use dlr_math as math;
pub use dlr_metrics as metrics;
pub use dlr_protocol as protocol;
pub use dlr_server as server;

/// Convenient glob-import surface for examples and quick starts.
pub mod prelude {
    pub use dlr_core::dlr as dlr_scheme;
    pub use dlr_core::params::SchemeParams;
    pub use dlr_core::party::{AnyParty1, P1Layout};
    pub use dlr_core::CoreError;
    pub use dlr_curve::{Group, Pairing, Ss1024, Ss512, Ss768, Toy};
    pub use dlr_math::{FieldElement, PrimeField};
}
